// Error-handling helpers used across the FHDnn codebase.
//
// The library throws `fhdnn::Error` (derived from std::runtime_error) for
// precondition violations so that callers can catch a single type. The
// FHDNN_CHECK macro evaluates its condition in every build type — these are
// API contract checks, not debug asserts.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fhdnn {

/// Exception type thrown on any precondition or invariant violation inside
/// the FHDnn library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "FHDNN_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace fhdnn

/// Check `cond`; on failure throw fhdnn::Error with location info.
/// Usage: FHDNN_CHECK(i < n, "index " << i << " out of range " << n);
#define FHDNN_CHECK(cond, ...)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream fhdnn_check_os_;                                  \
      __VA_OPT__(fhdnn_check_os_ << __VA_ARGS__;)                          \
      ::fhdnn::detail::throw_check_failure(#cond, __FILE__, __LINE__,      \
                                           fhdnn_check_os_.str());         \
    }                                                                      \
  } while (false)
