#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fhdnn::stats {

namespace {

template <typename T>
double mean_impl(std::span<const T> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const auto x : xs) s += static_cast<double>(x);
  return s / static_cast<double>(xs.size());
}

template <typename T>
double variance_impl(std::span<const T> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_impl(xs);
  double s = 0.0;
  for (const auto x : xs) {
    const double d = static_cast<double>(x) - m;
    s += d * d;
  }
  return s / static_cast<double>(xs.size() - 1);
}

}  // namespace

double mean(std::span<const double> xs) { return mean_impl(xs); }
double mean(std::span<const float> xs) { return mean_impl(xs); }
double variance(std::span<const double> xs) { return variance_impl(xs); }
double variance(std::span<const float> xs) { return variance_impl(xs); }
double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  FHDNN_CHECK(!xs.empty(), "min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  FHDNN_CHECK(!xs.empty(), "max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  FHDNN_CHECK(xs.size() == ys.size() && xs.size() >= 2,
              "pearson needs two equal-length spans with n >= 2");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  FHDNN_CHECK(sxx > 0.0 && syy > 0.0, "pearson with zero-variance input");
  return sxy / std::sqrt(sxx * syy);
}

double mse(std::span<const float> a, std::span<const float> b) {
  FHDNN_CHECK(a.size() == b.size() && !a.empty(), "mse size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return s / static_cast<double>(a.size());
}

double psnr(std::span<const float> reference, std::span<const float> test,
            double peak) {
  const double e = mse(reference, test);
  if (e <= 0.0) return 1e9;  // identical signals: effectively infinite PSNR
  return 10.0 * std::log10(peak * peak / e);
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace fhdnn::stats
