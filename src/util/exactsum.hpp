// Exact (error-free, associative) float32 summation (DESIGN.md §12).
//
// Floating-point addition is not associative, so a fan-in tree of plain
// `+` reductions gives a different result than a flat left-to-right sum —
// which would make hierarchical aggregation depend on tree shape and
// break the engine's bit-exactness contract. ExactSumVector sidesteps the
// problem instead of bounding it: every float32 is an integer multiple of
// 2^-149 (the subnormal quantum), so a wide fixed-point accumulator can
// represent ANY finite sum of float32 values exactly.
//
// Layout: per element, a 384-bit two's-complement integer (6 x uint64
// limbs, little-endian) counting multiples of 2^-149. A finite float32
// spans bit positions [0, 277) (24-bit significand shifted by up to
// 2^253), leaving ~107 bits of headroom — over 10^32 accumulated terms
// before overflow is even possible, unreachable in practice.
//
// Because limb addition is integer addition, accumulation is exactly
// associative and commutative: any grouping of add() calls — flat, a
// fan-in-2 tree, fan-in-16, or merges of partial accumulators via
// add(const ExactSumVector&) — yields bit-identical limbs, and round_to()
// performs the ONLY rounding step (single round-to-nearest-even back to
// float32). This is the primitive the hierarchical aggregation tree is
// pinned against.
//
// Inputs must be finite (FHDNN_CHECK); NaN/Inf have no fixed-point image.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/snapshot.hpp"

namespace fhdnn::util {

class ExactSumVector : public Snapshotable {
 public:
  /// Limbs per element: 384 bits = 277-bit float32 span + headroom.
  static constexpr std::size_t kLimbs = 6;

  ExactSumVector() = default;
  explicit ExactSumVector(std::size_t n);

  std::size_t size() const { return n_; }

  /// Accumulate `values` element-wise (values.size() must equal size()).
  /// Error-free: the accumulator afterwards represents the exact real
  /// sum. Throws on non-finite input.
  void add(std::span<const float> values);

  /// Merge another accumulator of the same size (limb-wise integer add).
  /// This is the fan-in-tree merge step, exact by construction.
  void add(const ExactSumVector& other);

  /// Round each element's exact sum to the nearest float32 (ties to
  /// even), writing into `out` (out.size() must equal size()). Values
  /// beyond float32 range become +/-inf. Does not modify the accumulator.
  void round_to(std::span<float> out) const;

  /// Reset all elements to zero, keeping the size.
  void clear();

  /// Snapshot the exact fixed-point state (size + raw limbs) bit-for-bit;
  /// a restored accumulator continues mid-aggregation with no rounding.
  void save(SnapshotWriter& w) const override;
  void load(SnapshotReader& r) override;

 private:
  std::size_t n_ = 0;
  // Element i occupies limbs_[i*kLimbs .. i*kLimbs+kLimbs), little-endian
  // two's complement, in units of 2^-149.
  std::vector<std::uint64_t> limbs_;
};

}  // namespace fhdnn::util
