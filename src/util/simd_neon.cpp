// NEON kernel tier (aarch64, where Advanced SIMD is baseline — no extra
// target flags needed, but the TU still compiles with -ffp-contract=off so
// the separate vmul/vadd intrinsics below are never fused into fmla; fused
// multiply-add rounds once instead of twice and would break the
// bit-exactness contract against the scalar oracle).
//
// pack/unpack are left to the scalar tier (null entries): without a
// movemask instruction the NEON bit-extraction dance buys little over the
// scalar loop, and the popcount/XOR kernels below carry the hot packed-HD
// path via the native vcnt instruction.
#include "util/simd.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <bit>

namespace fhdnn::simd::detail {

namespace {

void axpy_neon(float* y, float a, const float* x, std::int64_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t vx = vld1q_f32(x + i);
    const float32x4_t vy = vld1q_f32(y + i);
    vst1q_f32(y + i, vaddq_f32(vy, vmulq_f32(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale_neon(float* out, const float* x, float a, std::int64_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(x + i), va));
  }
  for (; i < n; ++i) out[i] = x[i] * a;
}

void add_neon(float* out, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_neon(float* out, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void mul_neon(float* out, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void xor_words_neon(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* out, std::int64_t nwords) {
  std::int64_t w = 0;
  for (; w + 2 <= nwords; w += 2) {
    vst1q_u64(out + w, veorq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
  }
  for (; w < nwords; ++w) out[w] = a[w] ^ b[w];
}

/// Per-128-bit popcount via vcnt (bytewise) + pairwise widening adds.
inline std::uint64_t popcount128(uint8x16_t v) {
  return vaddvq_u64(
      vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
}

std::uint64_t popcount_words_neon(const std::uint64_t* a,
                                  std::int64_t nwords) {
  std::uint64_t total = 0;
  std::int64_t w = 0;
  for (; w + 2 <= nwords; w += 2) {
    total += popcount128(vreinterpretq_u8_u64(vld1q_u64(a + w)));
  }
  for (; w < nwords; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w]));
  }
  return total;
}

std::uint64_t hamming_words_neon(const std::uint64_t* a,
                                 const std::uint64_t* b, std::int64_t nwords) {
  std::uint64_t total = 0;
  std::int64_t w = 0;
  for (; w + 2 <= nwords; w += 2) {
    const uint64x2_t x = veorq_u64(vld1q_u64(a + w), vld1q_u64(b + w));
    total += popcount128(vreinterpretq_u8_u64(x));
  }
  for (; w < nwords; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

constexpr Kernels kNeon = {
    axpy_neon, scale_neon, add_neon,
    sub_neon,  mul_neon,   nullptr /*pack_signs: scalar*/,
    nullptr /*unpack_signs: scalar*/, xor_words_neon,
    popcount_words_neon, hamming_words_neon,
};

}  // namespace

const Kernels* neon_table() { return &kNeon; }

}  // namespace fhdnn::simd::detail

#else  // !aarch64

namespace fhdnn::simd::detail {

const Kernels* neon_table() { return nullptr; }

}  // namespace fhdnn::simd::detail

#endif
