// Tiny command-line flag parser for benches and examples.
//
// Supported syntax: --name=value, --name value, and bare boolean --name.
// Unknown flags raise an error listing the registered flags, so a typo in a
// bench invocation fails loudly instead of silently running defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fhdnn {

class CliFlags {
 public:
  /// Register flags with defaults before parse().
  void define_int(const std::string& name, std::int64_t default_value,
                  const std::string& help);
  void define_double(const std::string& name, double default_value,
                     const std::string& help);
  void define_bool(const std::string& name, bool default_value,
                   const std::string& help);
  void define_string(const std::string& name, const std::string& default_value,
                     const std::string& help);

  /// Parse argv. Throws fhdnn::Error on unknown flags or bad values.
  /// Recognizes --help: prints usage to stdout and returns false (caller
  /// should exit 0).
  bool parse(int argc, char** argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Render usage text.
  std::string usage(const std::string& program) const;

 private:
  enum class Kind { Int, Double, Bool, String };
  struct Flag {
    Kind kind;
    std::string value;  // canonical textual value
    std::string help;
  };

  const Flag& find(const std::string& name, Kind kind) const;
  void set_value(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace fhdnn
