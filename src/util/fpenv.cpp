#include "util/fpenv.hpp"

#include <cfenv>
#include <limits>

#include "util/error.hpp"

#if defined(__SSE2__) && (defined(__x86_64__) || defined(__i386__))
// MXCSR access (FTZ/DAZ control bits), not SIMD math — the kernel-table
// isolation rule does not apply to the FP-environment probe.
#include <immintrin.h>  // fhdnn-lint: allow(simd-isolation)
#define FHDNN_HAVE_MXCSR 1
#endif

// Fast-math reassociates sums and substitutes reciprocals, which breaks
// bit-identical histories unconditionally — reject it at compile time
// rather than probing for its symptoms at runtime.
#ifdef __FAST_MATH__
#error "FHDnn must not be compiled with -ffast-math (breaks bit-identical \
training histories; see DESIGN.md §6)"
#endif

namespace fhdnn::util {

namespace {

/// Behavioural probe: under FTZ, min_float / 2 flushes to zero instead of
/// producing a subnormal. `volatile` keeps the compiler from folding the
/// arithmetic at build time (where the FP environment is the compiler's,
/// not the process's).
bool ftz_active() {
  volatile float tiny = std::numeric_limits<float>::min();
  volatile float half = tiny * 0.5F;
  return half == 0.0F;
}

/// Under DAZ, a subnormal input is treated as zero before the multiply.
bool daz_active() {
  volatile float denorm = std::numeric_limits<float>::denorm_min();
  volatile float scaled = denorm * 2.0F;
  return scaled == 0.0F;
}

}  // namespace

std::string fp_environment_issues() {
  std::string issues;
  const auto add = [&issues](const char* what) {
    if (!issues.empty()) issues += "; ";
    issues += what;
  };
  if (ftz_active()) add("flush-to-zero (FTZ) is active");
  if (daz_active()) add("denormals-are-zero (DAZ) is active");
  if (std::fegetround() != FE_TONEAREST) {
    add("rounding mode is not round-to-nearest");
  }
#ifdef FHDNN_HAVE_MXCSR
  const unsigned csr = _mm_getcsr();
  if ((csr & 0x8000U) != 0) add("MXCSR.FTZ bit is set");
  if ((csr & 0x0040U) != 0) add("MXCSR.DAZ bit is set");
#endif
  return issues;
}

bool fp_environment_strict() { return fp_environment_issues().empty(); }

void assert_fp_environment() {
  const std::string issues = fp_environment_issues();
  FHDNN_CHECK(issues.empty(),
              "hostile floating-point environment: "
                  << issues
                  << " — bit-identical training histories are impossible "
                     "(DESIGN.md §6/§10)");
}

}  // namespace fhdnn::util
