// Counting global operator new/delete. See alloc_spy.hpp.
//
// The counters are plain relaxed atomics: the tests snapshot them on one
// thread around a quiesced region, so no ordering beyond atomicity is
// needed. Every replaceable allocation form is overridden so nothing slips
// past the count; deletes route to free() to match.
#include "util/alloc_spy.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? align : size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

namespace fhdnn::util {

AllocSpySnapshot alloc_spy_snapshot() {
  return {g_alloc_count.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}

}  // namespace fhdnn::util

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
