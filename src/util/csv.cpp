#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace fhdnn {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  // %.6g is compact; integers print without a decimal point.
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> columns)
    : os_(os), n_cols_(columns.size()) {
  FHDNN_CHECK(n_cols_ > 0, "CSV needs at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(columns[i]);
  }
  os_ << '\n';
}

void CsvWriter::put(const std::string& formatted) {
  FHDNN_CHECK(col_ < n_cols_, "too many values in CSV row");
  if (col_) os_ << ',';
  os_ << formatted;
  ++col_;
}

CsvWriter& CsvWriter::add(const std::string& value) {
  put(csv_escape(value));
  return *this;
}

CsvWriter& CsvWriter::add(double value) {
  put(format_double(value));
  return *this;
}

CsvWriter& CsvWriter::add(std::int64_t value) {
  put(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::add(std::size_t value) {
  put(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::add(int value) {
  put(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  FHDNN_CHECK(col_ == n_cols_, "CSV row has " << col_ << " of " << n_cols_
                                              << " values");
  os_ << '\n';
  col_ = 0;
  ++rows_;
}

}  // namespace fhdnn
