// CSV emission for experiment harnesses.
//
// Benches print results both as aligned human-readable tables (see
// util/table.hpp) and as machine-readable CSV blocks so figures can be
// re-plotted from captured stdout.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fhdnn {

/// Streams rows of a CSV table to an ostream. Values are formatted with
/// enough precision to round-trip floats; strings containing commas or
/// quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> columns);

  /// Begin a new row; must be matched by exactly `columns.size()` add() calls
  /// followed by end_row().
  CsvWriter& add(const std::string& value);
  CsvWriter& add(double value);
  CsvWriter& add(std::int64_t value);
  CsvWriter& add(std::size_t value);
  CsvWriter& add(int value);
  void end_row();

  std::size_t rows_written() const { return rows_; }

 private:
  void put(const std::string& formatted);

  std::ostream& os_;
  std::size_t n_cols_;
  std::size_t col_ = 0;
  std::size_t rows_ = 0;
};

/// Quote a CSV field if needed (RFC 4180).
std::string csv_escape(const std::string& s);

/// Format a double compactly but losslessly enough for plotting.
std::string format_double(double v);

}  // namespace fhdnn
