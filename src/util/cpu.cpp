#include "util/cpu.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/error.hpp"
#include "util/log.hpp"

namespace fhdnn::util {

namespace {

/// Probe the executing CPU for the widest tier it can run. GCC/Clang's
/// __builtin_cpu_supports reads cpuid once and caches; on aarch64 NEON is
/// part of the baseline ISA so no runtime probe is needed.
SimdTier probe() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw")) {
    return SimdTier::Avx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdTier::Avx2;
  return SimdTier::Scalar;
#elif defined(__aarch64__)
  return SimdTier::Neon;
#else
  return SimdTier::Scalar;
#endif
}

/// Clamp a requested tier to what the CPU can execute. Cross-architecture
/// requests (e.g. `neon` on x86-64) fall to Scalar; same-architecture
/// requests fall to the best supported tier at or below the request.
SimdTier clamp_to_detected(SimdTier requested, SimdTier detected) {
  if (requested == SimdTier::Scalar) return SimdTier::Scalar;
  if (requested == SimdTier::Neon) {
    return detected == SimdTier::Neon ? SimdTier::Neon : SimdTier::Scalar;
  }
  // Avx2 / Avx512 requests: only meaningful when the CPU detected an x86
  // tier; take the smaller of request and detection.
  if (detected == SimdTier::Neon || detected == SimdTier::Scalar) {
    return detected == SimdTier::Neon ? SimdTier::Neon : SimdTier::Scalar;
  }
  return static_cast<int>(requested) <= static_cast<int>(detected) ? requested
                                                                   : detected;
}

/// Initial active tier: FHDNN_SIMD if set (clamped), else the detection.
SimdTier initial_tier() {
  const SimdTier detected = detected_simd();
  const char* env = std::getenv("FHDNN_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  const SimdTier requested = parse_simd_tier(env);
  const SimdTier clamped = clamp_to_detected(requested, detected);
  if (clamped != requested) {
    log_warn() << "FHDNN_SIMD=" << env << " not supported by this CPU; using "
               << simd_tier_name(clamped);
  }
  return clamped;
}

std::atomic<SimdTier>& active_tier_storage() {
  static std::atomic<SimdTier> tier{initial_tier()};
  return tier;
}

}  // namespace

SimdTier detected_simd() {
  static const SimdTier tier = probe();
  return tier;
}

SimdTier active_simd() {
  return active_tier_storage().load(std::memory_order_relaxed);
}

SimdTier set_simd_tier(SimdTier tier) {
  const SimdTier clamped = clamp_to_detected(tier, detected_simd());
  active_tier_storage().store(clamped, std::memory_order_relaxed);
  return clamped;
}

SimdTier parse_simd_tier(std::string_view name) {
  if (name == "scalar") return SimdTier::Scalar;
  if (name == "neon") return SimdTier::Neon;
  if (name == "avx2") return SimdTier::Avx2;
  if (name == "avx512") return SimdTier::Avx512;
  if (name == "native") return detected_simd();
  throw Error("unknown SIMD tier '" + std::string(name) +
              "' (expected scalar, neon, avx2, avx512, or native)");
}

std::string_view simd_tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::Scalar:
      return "scalar";
    case SimdTier::Neon:
      return "neon";
    case SimdTier::Avx2:
      return "avx2";
    case SimdTier::Avx512:
      return "avx512";
  }
  return "scalar";
}

}  // namespace fhdnn::util
