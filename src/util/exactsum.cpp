#include "util/exactsum.hpp"

#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace fhdnn::util {

namespace {

// Adds (lo, hi) << (64 * limb) into the element's limbs with carry
// propagation; limbs is a pointer to the element's limb 0.
void add_shifted(std::uint64_t* limbs, std::size_t limb, std::uint64_t lo,
                 std::uint64_t hi) {
  unsigned long long carry = 0;
  std::uint64_t sum = limbs[limb] + lo;
  carry = sum < lo ? 1 : 0;
  limbs[limb] = sum;
  for (std::size_t i = limb + 1; i < ExactSumVector::kLimbs; ++i) {
    const std::uint64_t addend = (i == limb + 1) ? hi : 0;
    if (carry == 0 && addend == 0) break;
    sum = limbs[i] + addend + carry;
    // Overflow iff the result wrapped past either operand (carry <= 1, so
    // a single comparison against the larger contribution suffices).
    carry = (sum < addend || (carry != 0 && sum == addend)) ? 1 : 0;
    limbs[i] = sum;
  }
}

// Subtracts (lo, hi) << (64 * limb) with borrow propagation (two's
// complement wraps at the top limb, which is the correct mod-2^384
// behaviour for a negative total).
void sub_shifted(std::uint64_t* limbs, std::size_t limb, std::uint64_t lo,
                 std::uint64_t hi) {
  unsigned long long borrow = 0;
  std::uint64_t diff = limbs[limb] - lo;
  borrow = limbs[limb] < lo ? 1 : 0;
  limbs[limb] = diff;
  for (std::size_t i = limb + 1; i < ExactSumVector::kLimbs; ++i) {
    const std::uint64_t sub = (i == limb + 1) ? hi : 0;
    if (borrow == 0 && sub == 0) break;
    const std::uint64_t before = limbs[i];
    diff = before - sub - borrow;
    borrow = (before < sub || (borrow != 0 && before == sub)) ? 1 : 0;
    limbs[i] = diff;
  }
}

}  // namespace

ExactSumVector::ExactSumVector(std::size_t n)
    : n_(n), limbs_(n * kLimbs, 0) {}

void ExactSumVector::add(std::span<const float> values) {
  FHDNN_CHECK(values.size() == n_,
              "ExactSumVector::add size " << values.size() << " != " << n_);
  for (std::size_t e = 0; e < n_; ++e) {
    const float x = values[e];
    FHDNN_CHECK(std::isfinite(x), "ExactSumVector::add non-finite input");
    const auto bits = std::bit_cast<std::uint32_t>(x);
    const std::uint32_t exp = (bits >> 23) & 0xFFU;
    const std::uint32_t man = bits & 0x7FFFFFU;
    // Decompose |x| = m * 2^shift in units of 2^-149: subnormals are
    // M * 2^-149 directly; a normal with biased exponent E is
    // (2^23 + M) * 2^(E-150-23+... ) — i.e. (2^23+M) * 2^(E-1) quanta.
    std::uint64_t m = 0;
    std::size_t shift = 0;
    if (exp == 0) {
      m = man;
    } else {
      m = man | 0x800000U;
      shift = exp - 1;
    }
    if (m == 0) continue;  // +/-0 contributes nothing
    const std::size_t limb = shift / 64;
    const std::size_t off = shift % 64;
    const std::uint64_t lo = m << off;
    const std::uint64_t hi = off == 0 ? 0 : (m >> (64 - off));
    std::uint64_t* elem = limbs_.data() + e * kLimbs;
    if ((bits >> 31) == 0) {
      add_shifted(elem, limb, lo, hi);
    } else {
      sub_shifted(elem, limb, lo, hi);
    }
  }
}

void ExactSumVector::add(const ExactSumVector& other) {
  FHDNN_CHECK(other.n_ == n_,
              "ExactSumVector::add(acc) size " << other.n_ << " != " << n_);
  for (std::size_t e = 0; e < n_; ++e) {
    std::uint64_t* a = limbs_.data() + e * kLimbs;
    const std::uint64_t* b = other.limbs_.data() + e * kLimbs;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      const std::uint64_t sum = a[i] + b[i] + carry;
      carry = (sum < b[i] || (carry != 0 && sum == b[i])) ? 1 : 0;
      a[i] = sum;
    }
    // Two's-complement wrap at the top limb is intentional: the 107-bit
    // headroom guarantees the true value never leaves the signed range.
  }
}

void ExactSumVector::round_to(std::span<float> out) const {
  FHDNN_CHECK(out.size() == n_,
              "ExactSumVector::round_to size " << out.size() << " != " << n_);
  for (std::size_t e = 0; e < n_; ++e) {
    const std::uint64_t* elem = limbs_.data() + e * kLimbs;
    // Sign from the top bit; work on the magnitude.
    const bool negative = (elem[kLimbs - 1] >> 63) != 0;
    std::uint64_t mag[kLimbs];
    if (negative) {
      std::uint64_t carry = 1;
      for (std::size_t i = 0; i < kLimbs; ++i) {
        mag[i] = ~elem[i] + carry;
        carry = (carry != 0 && mag[i] == 0) ? 1 : 0;
      }
    } else {
      for (std::size_t i = 0; i < kLimbs; ++i) mag[i] = elem[i];
    }
    // Most significant set bit, as a quantum (2^-149) bit position.
    int msb = -1;
    for (int i = static_cast<int>(kLimbs) - 1; i >= 0; --i) {
      if (mag[i] != 0) {
        msb = i * 64 + 63 - std::countl_zero(mag[i]);
        break;
      }
    }
    std::uint32_t bits = 0;
    if (msb < 0) {
      bits = 0;  // exact zero rounds to +0.0f
    } else if (msb <= 23) {
      // mag < 2^24: mag quanta encode exactly as the raw bit pattern
      // (subnormals for mag < 2^23, smallest normals just above).
      bits = static_cast<std::uint32_t>(mag[0]);
    } else {
      // Extract the top 24 bits as the significand, then round to
      // nearest (ties to even) using guard and sticky bits.
      const int lo_bit = msb - 23;
      const int li = lo_bit / 64;
      const int off = lo_bit % 64;
      std::uint64_t window = mag[li] >> off;
      if (off != 0 && li + 1 < static_cast<int>(kLimbs)) {
        window |= mag[li + 1] << (64 - off);
      }
      std::uint32_t sig = static_cast<std::uint32_t>(window & 0xFFFFFFU);
      const int guard_bit = lo_bit - 1;
      const bool guard =
          ((mag[guard_bit / 64] >> (guard_bit % 64)) & 1ULL) != 0;
      bool sticky = false;
      const int gli = guard_bit / 64;
      const int goff = guard_bit % 64;
      if (goff > 0) sticky = (mag[gli] & ((1ULL << goff) - 1)) != 0;
      for (int i = 0; i < gli && !sticky; ++i) sticky = mag[i] != 0;
      int p = msb;
      if (guard && (sticky || (sig & 1U) != 0)) {
        ++sig;
        if (sig == (1U << 24)) {  // rounded up across a power of two
          sig >>= 1;
          ++p;
        }
      }
      const int exp = p - 22;  // biased: value = sig * 2^(p-23) quanta
      if (exp >= 255) {
        bits = 0x7F800000U;  // overflow -> infinity
      } else {
        bits = (static_cast<std::uint32_t>(exp) << 23) | (sig & 0x7FFFFFU);
      }
    }
    if (negative) bits |= 0x80000000U;
    out[e] = std::bit_cast<float>(bits);
  }
}

void ExactSumVector::clear() {
  for (auto& limb : limbs_) limb = 0;
}

void ExactSumVector::save(SnapshotWriter& w) const {
  w.write_u64(n_);
  w.write_u64s(limbs_);
}

void ExactSumVector::load(SnapshotReader& r) {
  n_ = static_cast<std::size_t>(r.read_u64());
  limbs_ = r.read_u64s();
  FHDNN_CHECK(limbs_.size() == n_ * kLimbs,
              "exactsum snapshot: " << limbs_.size() << " limbs for " << n_
                                    << " elements");
}

}  // namespace fhdnn::util
