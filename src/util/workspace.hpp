// Per-thread bump-arena for kernel scratch memory.
//
// The `_into` kernels and the nn layers need short-lived scratch (im2col
// column matrices, gradient staging buffers) on every training step. A
// general-purpose allocator would pay a heap round-trip per buffer per step;
// the Workspace instead bumps a pointer through a few long-lived blocks and
// rewinds it when the enclosing `Scope` ends. After a warmup step has grown
// the arena to the model's high-water mark, every subsequent step runs with
// zero heap allocations (tests/test_memory.cpp enforces this).
//
// Ownership model (DESIGN.md §9): one arena per thread, reached through
// `tls_workspace()`. The FL engine's worker threads therefore reuse a single
// arena across clients and rounds; `reset()` at a client/batch boundary
// coalesces any fragmented growth into one block so the steady state bumps
// through contiguous memory.
//
// Pointers returned by `floats()` / `indices()` are valid until the
// innermost enclosing Scope is destroyed (or until reset()); they are never
// valid across those boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace fhdnn::util {

/// Counters describing an arena's lifetime behaviour. `heap_allocations`
/// and `high_water_bytes` are the numbers the zero-allocation tests and
/// bench/micro_memory report: once warmup is done, both must stop moving.
struct WorkspaceStats {
  std::uint64_t heap_allocations = 0;  ///< backing blocks ever malloc'd
  std::uint64_t capacity_bytes = 0;    ///< total backing capacity
  std::uint64_t bytes_in_use = 0;      ///< currently bumped-out bytes
  std::uint64_t high_water_bytes = 0;  ///< max bytes_in_use ever
  std::uint64_t alloc_calls = 0;       ///< floats()/indices() calls
  std::uint64_t resets = 0;            ///< reset() calls
};

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Scratch array of `n` floats, 16-byte aligned, uninitialized. Valid
  /// until the innermost enclosing Scope ends.
  float* floats(std::int64_t n);

  /// Scratch array of `n` int64 indices (maxpool argmax and friends).
  std::int64_t* indices(std::int64_t n);

  /// Rewind everything and coalesce fragmented growth into one block so
  /// steady-state bumping is contiguous. Call at a batch/client boundary
  /// when no scratch pointers are live. In FHDNN_CHECKED builds, throws
  /// fhdnn::Error if any Scope is still open — resetting under a live
  /// Scope invalidates its saved mark and is always a caller bug (the
  /// Scope's destructor would rewind into a freed/relocated block).
  void reset();

  const WorkspaceStats& stats() const { return stats_; }

  /// Number of currently-open Scopes on this arena. Zero at every
  /// client/batch boundary; the FL engines assert this in FHDNN_CHECKED
  /// builds to catch Scope leaks (a Scope held across a boundary pins the
  /// whole arena high-water region).
  std::int64_t scope_depth() const { return scope_depth_; }

  /// RAII bump mark: records the arena position on entry and rewinds to it
  /// on exit. Scopes nest; each kernel/layer opens one around its scratch.
  class Scope {
   public:
    explicit Scope(Workspace& ws);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    std::size_t block_;
    std::size_t used_;
  };

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* allocate(std::size_t bytes);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< index of the block currently bumped
  std::int64_t scope_depth_ = 0;  ///< open Scopes (leak detection)
  WorkspaceStats stats_;
};

/// The calling thread's arena. Workers in the process-global thread pool
/// each get their own; it persists for the thread's lifetime.
Workspace& tls_workspace();

}  // namespace fhdnn::util
