#include "util/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace fhdnn::util {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

const char* kind_name(SnapshotErrorKind kind) {
  switch (kind) {
    case SnapshotErrorKind::kIo: return "io";
    case SnapshotErrorKind::kFormat: return "format";
    case SnapshotErrorKind::kVersion: return "version";
    case SnapshotErrorKind::kCrc: return "crc";
    case SnapshotErrorKind::kTruncated: return "truncated";
    case SnapshotErrorKind::kState: return "state";
  }
  return "unknown";
}

std::string format_message(SnapshotErrorKind kind, std::size_t byte_offset,
                           const std::string& message) {
  std::ostringstream os;
  os << "snapshot " << kind_name(kind) << " error at byte " << byte_offset
     << ": " << message;
  return os.str();
}

constexpr char kMagic[8] = {'F', 'H', 'D', 'N', 'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderSize = sizeof(kMagic) + sizeof(std::uint32_t);
// Chunk frame: 4-byte tag, u64 payload length, u32 payload CRC.
constexpr std::size_t kFrameSize = 4 + sizeof(std::uint64_t) + sizeof(std::uint32_t);

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t len) {
  if (len == 0) return;  // empty vectors hand over a null data()
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + len);
}

[[noreturn]] void throw_io(const std::string& what) {
  throw SnapshotError(SnapshotErrorKind::kIo, 0,
                      what + ": " + std::strerror(errno));
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);  // NOLINT
  if (fd < 0) {
    return;  // best effort: some filesystems refuse directory opens
  }
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFU] ^ (crc >> 8U);
  }
  return crc ^ 0xFFFFFFFFU;
}

SnapshotError::SnapshotError(SnapshotErrorKind kind, std::size_t byte_offset,
                             const std::string& message)
    : Error(format_message(kind, byte_offset, message)),
      kind_(kind),
      byte_offset_(byte_offset) {}

// ---------------------------------------------------------------------------
// SnapshotWriter

SnapshotWriter::SnapshotWriter() {
  out_.reserve(256);
  append_bytes(out_, kMagic, sizeof(kMagic));
  const std::uint32_t version = kSnapshotVersion;
  append_bytes(out_, &version, sizeof(version));
}

void SnapshotWriter::begin_chunk(std::string_view tag) {
  FHDNN_CHECK(!committed_, "SnapshotWriter reused after commit");
  FHDNN_CHECK(!in_chunk_, "begin_chunk while chunk '" << tag_ << "' is open");
  FHDNN_CHECK(tag.size() == 4, "chunk tag must be 4 bytes, got '" << tag << "'");
  tag_.assign(tag);
  chunk_.clear();
  in_chunk_ = true;
}

void SnapshotWriter::end_chunk() {
  FHDNN_CHECK(in_chunk_, "end_chunk without begin_chunk");
  append_bytes(out_, tag_.data(), 4);
  const auto len = static_cast<std::uint64_t>(chunk_.size());
  append_bytes(out_, &len, sizeof(len));
  const std::uint32_t crc = crc32(chunk_.data(), chunk_.size());
  append_bytes(out_, &crc, sizeof(crc));
  append_bytes(out_, chunk_.data(), chunk_.size());
  chunk_.clear();
  in_chunk_ = false;
}

void SnapshotWriter::chunk_bytes(const void* data, std::size_t len) {
  FHDNN_CHECK(in_chunk_, "snapshot write outside begin_chunk/end_chunk");
  append_bytes(chunk_, data, len);
}

void SnapshotWriter::write_u8(std::uint8_t v) { chunk_bytes(&v, sizeof(v)); }
void SnapshotWriter::write_u32(std::uint32_t v) { chunk_bytes(&v, sizeof(v)); }
void SnapshotWriter::write_u64(std::uint64_t v) { chunk_bytes(&v, sizeof(v)); }
void SnapshotWriter::write_i64(std::int64_t v) { chunk_bytes(&v, sizeof(v)); }
void SnapshotWriter::write_f32(float v) { chunk_bytes(&v, sizeof(v)); }
void SnapshotWriter::write_f64(double v) { chunk_bytes(&v, sizeof(v)); }

void SnapshotWriter::write_str(std::string_view s) {
  write_u64(s.size());
  chunk_bytes(s.data(), s.size());
}

void SnapshotWriter::write_bytes(const void* data, std::size_t len) {
  chunk_bytes(data, len);
}

void SnapshotWriter::write_floats(const std::vector<float>& v) {
  write_u64(v.size());
  chunk_bytes(v.data(), v.size() * sizeof(float));
}

void SnapshotWriter::write_doubles(const std::vector<double>& v) {
  write_u64(v.size());
  chunk_bytes(v.data(), v.size() * sizeof(double));
}

void SnapshotWriter::write_u64s(const std::vector<std::uint64_t>& v) {
  write_u64(v.size());
  chunk_bytes(v.data(), v.size() * sizeof(std::uint64_t));
}

void SnapshotWriter::write_sizes(const std::vector<std::size_t>& v) {
  write_u64(v.size());
  for (const std::size_t s : v) {
    write_u64(static_cast<std::uint64_t>(s));
  }
}

void SnapshotWriter::write_flags(const std::vector<char>& v) {
  write_u64(v.size());
  chunk_bytes(v.data(), v.size());
}

std::size_t SnapshotWriter::byte_size() const noexcept {
  return out_.size() + (in_chunk_ ? chunk_.size() + kFrameSize : 0);
}

std::vector<std::uint8_t> SnapshotWriter::finish() {
  FHDNN_CHECK(!committed_, "SnapshotWriter reused after commit/finish");
  FHDNN_CHECK(!in_chunk_, "finish with chunk '" << tag_ << "' still open");
  begin_chunk("END ");
  end_chunk();
  committed_ = true;
  return std::move(out_);
}

std::size_t SnapshotWriter::commit(const std::string& path) {
  const std::vector<std::uint8_t> image = finish();
  atomic_write_file(path, image.data(), image.size(), /*keep_previous=*/true);
  return image.size();
}

// ---------------------------------------------------------------------------
// SnapshotReader

SnapshotReader SnapshotReader::from_file(const std::string& path) {
  SnapshotReader reader;
  reader.path_ = path;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw SnapshotError(SnapshotErrorKind::kIo, 0, "cannot open " + path);
  }
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  reader.data_.resize(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(reader.data_.data()), size);
  }
  if (!in) {
    throw SnapshotError(SnapshotErrorKind::kIo, 0, "cannot read " + path);
  }
  reader.validate();
  return reader;
}

SnapshotReader SnapshotReader::from_bytes(std::vector<std::uint8_t> image,
                                          std::string origin) {
  SnapshotReader reader;
  reader.path_ = std::move(origin);
  reader.data_ = std::move(image);
  reader.validate();
  return reader;
}

SnapshotReader SnapshotReader::open_with_fallback(const std::string& path) {
  try {
    return from_file(path);
  } catch (const SnapshotError& primary) {
    try {
      return from_file(path + ".prev");
    } catch (const SnapshotError& fallback) {
      throw SnapshotError(SnapshotErrorKind::kIo, 0,
                          "no usable snapshot generation; primary: " +
                              std::string(primary.what()) +
                              "; previous: " + std::string(fallback.what()));
    }
  }
}

void SnapshotReader::fail(SnapshotErrorKind kind, std::size_t offset,
                          const std::string& message) const {
  throw SnapshotError(kind, offset, message + " (" + path_ + ")");
}

void SnapshotReader::validate() {
  if (data_.size() < kHeaderSize) {
    fail(SnapshotErrorKind::kTruncated, data_.size(),
         "file shorter than the snapshot header");
  }
  if (std::memcmp(data_.data(), kMagic, sizeof(kMagic)) != 0) {
    fail(SnapshotErrorKind::kFormat, 0, "bad magic, not a snapshot file");
  }
  std::memcpy(&version_, data_.data() + sizeof(kMagic), sizeof(version_));
  if (version_ != kSnapshotVersion) {
    fail(SnapshotErrorKind::kVersion, sizeof(kMagic),
         "unsupported snapshot version " + std::to_string(version_));
  }
  std::size_t off = kHeaderSize;
  bool saw_end = false;
  while (!saw_end) {
    if (off + kFrameSize > data_.size()) {
      fail(SnapshotErrorKind::kTruncated, off, "chunk frame cut short");
    }
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, data_.data() + off + 4, sizeof(len));
    std::memcpy(&crc, data_.data() + off + 12, sizeof(crc));
    if (len > data_.size() - off - kFrameSize) {
      fail(SnapshotErrorKind::kTruncated, off + 4,
           "chunk payload extends past end of file");
    }
    const std::uint8_t* payload = data_.data() + off + kFrameSize;
    if (crc32(payload, static_cast<std::size_t>(len)) != crc) {
      fail(SnapshotErrorKind::kCrc, off + 12,
           "chunk '" + std::string(data_.begin() + static_cast<std::ptrdiff_t>(off),
                                   data_.begin() + static_cast<std::ptrdiff_t>(off) + 4) +
               "' failed CRC validation");
    }
    saw_end = std::memcmp(data_.data() + off, "END ", 4) == 0;
    off += kFrameSize + static_cast<std::size_t>(len);
  }
  if (off != data_.size()) {
    fail(SnapshotErrorKind::kFormat, off, "trailing bytes after END chunk");
  }
  cursor_ = kHeaderSize;
}

std::string SnapshotReader::peek_tag() const {
  FHDNN_CHECK(!in_chunk_, "peek_tag inside an open chunk");
  // validate() guarantees a well-formed chunk (ending with END) at cursor_.
  return {data_.begin() + static_cast<std::ptrdiff_t>(cursor_),
          data_.begin() + static_cast<std::ptrdiff_t>(cursor_) + 4};
}

void SnapshotReader::enter_chunk(std::string_view tag) {
  FHDNN_CHECK(!in_chunk_, "enter_chunk inside an open chunk");
  const std::string next = peek_tag();
  if (next != tag) {
    fail(SnapshotErrorKind::kState, cursor_,
         "expected chunk '" + std::string(tag) + "', found '" + next + "'");
  }
  std::uint64_t len = 0;
  std::memcpy(&len, data_.data() + cursor_ + 4, sizeof(len));
  cursor_ += kFrameSize;
  chunk_end_ = cursor_ + static_cast<std::size_t>(len);
  in_chunk_ = true;
}

void SnapshotReader::leave_chunk() {
  FHDNN_CHECK(in_chunk_, "leave_chunk without enter_chunk");
  if (cursor_ != chunk_end_) {
    fail(SnapshotErrorKind::kState, cursor_,
         "chunk payload not fully consumed; " +
             std::to_string(chunk_end_ - cursor_) + " bytes left");
  }
  in_chunk_ = false;
}

void SnapshotReader::need(std::size_t len) {
  FHDNN_CHECK(in_chunk_, "snapshot read outside enter_chunk/leave_chunk");
  if (len > chunk_end_ - cursor_) {
    fail(SnapshotErrorKind::kTruncated, cursor_,
         "read of " + std::to_string(len) + " bytes overruns the chunk");
  }
}

std::uint8_t SnapshotReader::read_u8() {
  need(1);
  return data_[cursor_++];
}

std::uint32_t SnapshotReader::read_u32() {
  need(sizeof(std::uint32_t));
  std::uint32_t v = 0;
  std::memcpy(&v, data_.data() + cursor_, sizeof(v));
  cursor_ += sizeof(v);
  return v;
}

std::uint64_t SnapshotReader::read_u64() {
  need(sizeof(std::uint64_t));
  std::uint64_t v = 0;
  std::memcpy(&v, data_.data() + cursor_, sizeof(v));
  cursor_ += sizeof(v);
  return v;
}

std::int64_t SnapshotReader::read_i64() {
  need(sizeof(std::int64_t));
  std::int64_t v = 0;
  std::memcpy(&v, data_.data() + cursor_, sizeof(v));
  cursor_ += sizeof(v);
  return v;
}

float SnapshotReader::read_f32() {
  need(sizeof(float));
  float v = 0;
  std::memcpy(&v, data_.data() + cursor_, sizeof(v));
  cursor_ += sizeof(v);
  return v;
}

double SnapshotReader::read_f64() {
  need(sizeof(double));
  double v = 0;
  std::memcpy(&v, data_.data() + cursor_, sizeof(v));
  cursor_ += sizeof(v);
  return v;
}

std::string SnapshotReader::read_str() {
  const auto len = static_cast<std::size_t>(read_u64());
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + cursor_), len);
  cursor_ += len;
  return s;
}

void SnapshotReader::read_bytes(void* out, std::size_t len) {
  need(len);
  if (len != 0) std::memcpy(out, data_.data() + cursor_, len);
  cursor_ += len;
}

std::vector<float> SnapshotReader::read_floats() {
  const auto n = static_cast<std::size_t>(read_u64());
  need(n * sizeof(float));
  std::vector<float> v(n);
  if (n != 0) std::memcpy(v.data(), data_.data() + cursor_, n * sizeof(float));
  cursor_ += n * sizeof(float);
  return v;
}

std::vector<double> SnapshotReader::read_doubles() {
  const auto n = static_cast<std::size_t>(read_u64());
  need(n * sizeof(double));
  std::vector<double> v(n);
  if (n != 0) std::memcpy(v.data(), data_.data() + cursor_, n * sizeof(double));
  cursor_ += n * sizeof(double);
  return v;
}

std::vector<std::uint64_t> SnapshotReader::read_u64s() {
  const auto n = static_cast<std::size_t>(read_u64());
  need(n * sizeof(std::uint64_t));
  std::vector<std::uint64_t> v(n);
  if (n != 0) std::memcpy(v.data(), data_.data() + cursor_, n * sizeof(std::uint64_t));
  cursor_ += n * sizeof(std::uint64_t);
  return v;
}

std::vector<std::size_t> SnapshotReader::read_sizes() {
  const auto n = static_cast<std::size_t>(read_u64());
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::size_t>(read_u64());
  }
  return v;
}

std::vector<char> SnapshotReader::read_flags() {
  const auto n = static_cast<std::size_t>(read_u64());
  need(n);
  std::vector<char> v(n);
  if (n != 0) std::memcpy(v.data(), data_.data() + cursor_, n);
  cursor_ += n;
  return v;
}

// ---------------------------------------------------------------------------
// Atomic file replacement

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t len, bool keep_previous) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);  // NOLINT
  if (fd < 0) {
    throw_io("cannot create " + tmp);
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, p + written, len - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      throw_io("write to " + tmp + " failed");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_io("fsync of " + tmp + " failed");
  }
  if (::close(fd) != 0) {
    throw_io("close of " + tmp + " failed");
  }
  if (keep_previous) {
    const std::string prev = path + ".prev";
    if (::rename(path.c_str(), prev.c_str()) != 0 && errno != ENOENT) {
      throw_io("rotate " + path + " -> " + prev + " failed");
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_io("rename " + tmp + " -> " + path + " failed");
  }
  fsync_parent_dir(path);
}

void atomic_write_text(const std::string& path, std::string_view text) {
  atomic_write_file(path, text.data(), text.size(), /*keep_previous=*/false);
}

}  // namespace fhdnn::util
