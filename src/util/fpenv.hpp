// Floating-point environment guard.
//
// The bit-identical-history contract (DESIGN.md §6) assumes strict IEEE-754
// float32/float64: round-to-nearest, subnormals preserved, no fast-math
// value substitutions. A process that flips FTZ/DAZ in the MXCSR (some
// audio/game runtimes do, and -ffast-math does at startup via crtfastmath)
// would silently change training histories. In FHDNN_CHECKED builds the
// engines reject such an environment at startup instead of diverging from
// the goldens hours later.
#pragma once

#include <string>

namespace fhdnn::util {

/// Empty string when the environment is strict IEEE-754; otherwise a
/// human-readable list of problems (FTZ active, DAZ active, rounding mode
/// not nearest). Probes behaviour (subnormal arithmetic through volatiles)
/// plus the MXCSR bits directly on x86.
std::string fp_environment_issues();

/// True when fp_environment_issues() is empty.
bool fp_environment_strict();

/// Throw fhdnn::Error describing the problems when the environment is not
/// strict. Compiling the library with -ffast-math is rejected at compile
/// time (fpenv.cpp has a #error for __FAST_MATH__).
void assert_fp_environment();

}  // namespace fhdnn::util
