// Small statistics helpers used by experiments and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fhdnn::stats {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> xs);
double mean(std::span<const float> xs);

/// Unbiased sample variance (n-1 denominator). Returns 0 for n < 2.
double variance(std::span<const double> xs);
double variance(std::span<const float> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Minimum / maximum; require non-empty input.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Pearson correlation of two equal-length spans; requires n >= 2 and
/// nonzero variance in both.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Mean squared error between two equal-length spans.
double mse(std::span<const float> a, std::span<const float> b);

/// Peak signal-to-noise ratio in dB, given a peak signal value.
double psnr(std::span<const float> reference, std::span<const float> test,
            double peak);

/// Running mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Unbiased; 0 for n < 2.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fhdnn::stats
