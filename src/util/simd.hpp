// Runtime-dispatched SIMD kernels for the two hot data representations
// (DESIGN.md §11): float rows (tensor elementwise / matmul inner loops) and
// bit-packed hypervector words (pack, XOR-bind, popcount hamming).
//
// Dispatch model: `kernels()` returns a table of function pointers resolved
// against util::active_simd(). Each tier's implementations live in their
// own translation unit compiled with the matching target flags
// (simd_avx2.cpp with -mavx2, simd_avx512.cpp with -mavx512f/-mavx512bw,
// NEON inline on aarch64); tiers provide *partial* tables and the
// dispatcher overlays them on the scalar baseline, so a tier only
// implements the kernels it accelerates.
//
// Bit-exactness contract (the reason golden histories survive dispatch):
//   * float kernels perform the identical IEEE-754 operation sequence per
//     element as the scalar tier — vector lanes map 1:1 onto independent
//     output elements, multiplies and adds are emitted as separate
//     instructions (the SIMD TUs compile with -ffp-contract=off and no
//     FMA), and there are no reassociated reductions;
//   * bit kernels are integer arithmetic, exact by construction.
// tests/test_packed.cpp pins every tier's output against the scalar tier
// bit-for-bit, including NaN/Inf/-0.0 payloads.
//
// These kernels take raw pointers, not Tensor views: they are the innermost
// building blocks underneath the `_into` layer and must stay free of any
// per-call shape machinery.
#pragma once

#include <cstdint>

#include "util/cpu.hpp"

namespace fhdnn::simd {

/// One tier's kernel table. Null entries in a tier table mean "no
/// accelerated version"; the dispatcher fills them from lower tiers.
/// All pointer arguments may alias only where the per-kernel contract
/// says so (see each member).
struct Kernels {
  // ---- float row kernels (bit-identical across tiers) ----
  /// y[i] += a * x[i]. y must not alias x unless y == x exactly.
  void (*axpy_f32)(float* y, float a, const float* x, std::int64_t n);
  /// out[i] = x[i] * a. out may alias x.
  void (*scale_f32)(float* out, const float* x, float a, std::int64_t n);
  /// out[i] = a[i] + b[i]. out may alias a and/or b.
  void (*add_f32)(float* out, const float* a, const float* b, std::int64_t n);
  /// out[i] = a[i] - b[i]. out may alias a and/or b.
  void (*sub_f32)(float* out, const float* a, const float* b, std::int64_t n);
  /// out[i] = a[i] * b[i]. out may alias a and/or b.
  void (*mul_f32)(float* out, const float* a, const float* b, std::int64_t n);

  // ---- bit kernels over packed hypervector words (integer-exact) ----
  /// Pack nbits sign bits: bit i of dst = (src[i] >= 0.0f), the library's
  /// sign(0) := +1 convention (NaN packs as 0 / -1, matching `>=`).
  /// Unwritten tail bits of the last word are zeroed. No aliasing.
  void (*pack_signs)(const float* src, std::uint64_t* dst, std::int64_t nbits);
  /// Unpack nbits to bipolar floats: dst[i] = bit set ? +1.0f : -1.0f.
  /// No aliasing.
  void (*unpack_signs)(const std::uint64_t* src, float* dst,
                       std::int64_t nbits);
  /// out[w] = a[w] ^ b[w]. out may alias a and/or b.
  void (*xor_words)(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* out, std::int64_t nwords);
  /// Total set bits across nwords words.
  std::uint64_t (*popcount_words)(const std::uint64_t* a, std::int64_t nwords);
  /// popcount(a ^ b) across nwords words — the packed hamming primitive.
  std::uint64_t (*hamming_words)(const std::uint64_t* a,
                                 const std::uint64_t* b, std::int64_t nwords);
};

/// Kernel table for util::active_simd() — re-resolved on every call, so
/// util::set_simd_tier() takes effect immediately (the lookup is an atomic
/// load plus an array index).
const Kernels& kernels();

/// Kernel table for an explicit tier (clamped to detected support).
const Kernels& kernels_for(util::SimdTier tier);

namespace detail {

/// Per-tier partial tables; null when the TU was compiled without the
/// tier's ISA (non-x86 build, or an ancient compiler). Scalar is complete
/// by definition.
const Kernels& scalar_table();
const Kernels* avx2_table();    // null outside x86-64 builds
const Kernels* avx512_table();  // null outside x86-64 builds
const Kernels* neon_table();    // null outside aarch64 builds

}  // namespace detail

}  // namespace fhdnn::simd
