#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace fhdnn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a label, used to derive independent sub-streams.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::fork(std::string_view label) const {
  std::uint64_t mix = hash_label(label);
  // Mix the child's seed from all four state words plus the label hash so
  // that forks of forks stay independent.
  std::uint64_t seed = mix;
  for (const auto s : s_) {
    seed = rotl(seed ^ s, 29) * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL;
  }
  return Rng(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
  FHDNN_CHECK(lo <= hi, "randint range [" << lo << ", " << hi << "]");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  FHDNN_CHECK(p >= 0.0 && p <= 1.0, "bernoulli p=" << p);
  return uniform() < p;
}

std::uint64_t Rng::geometric(double p) {
  FHDNN_CHECK(p > 0.0 && p <= 1.0, "geometric p=" << p);
  if (p >= 1.0) return 1;
  double u = uniform();
  while (u <= 0.0) u = uniform();
  // ceil(log(u) / log(1-p)) is Geometric(p) on {1, 2, ...}.
  const double g = std::ceil(std::log(u) / std::log1p(-p));
  if (g < 1.0) return 1;
  if (g > 9.0e18) return static_cast<std::uint64_t>(9.0e18);
  return static_cast<std::uint64_t>(g);
}

void Rng::fill_normal(std::vector<float>& out, float mean, float stddev) {
  for (auto& v : out) v = static_cast<float>(normal(mean, stddev));
}

void Rng::fill_uniform(std::vector<float>& out, float lo, float hi) {
  for (auto& v : out) v = static_cast<float>(uniform(lo, hi));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  FHDNN_CHECK(k <= n, "cannot sample " << k << " from " << n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: first k entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        randint(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<double> Rng::dirichlet(double alpha, std::size_t k) {
  FHDNN_CHECK(alpha > 0.0 && k > 0, "dirichlet(alpha=" << alpha << ", k=" << k << ")");
  // Marsaglia-Tsang gamma sampling; for alpha < 1 use the boost
  // Gamma(alpha) = Gamma(alpha+1) * U^(1/alpha).
  auto sample_gamma = [this](double shape) {
    double boost = 1.0;
    double a = shape;
    if (a < 1.0) {
      double u = uniform();
      while (u <= 1e-300) u = uniform();
      boost = std::pow(u, 1.0 / a);
      a += 1.0;
    }
    const double d = a - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = normal();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v;
      if (u > 1e-300 &&
          std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return boost * d * v;
      }
    }
  };
  std::vector<double> out(k);
  double sum = 0.0;
  for (auto& v : out) {
    v = sample_gamma(alpha);
    sum += v;
  }
  if (sum <= 0.0) {  // numerically degenerate; fall back to uniform simplex
    for (auto& v : out) v = 1.0 / static_cast<double>(k);
    return out;
  }
  for (auto& v : out) v /= sum;
  return out;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  FHDNN_CHECK(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    FHDNN_CHECK(w >= 0.0, "categorical weight " << w << " < 0");
    total += w;
  }
  FHDNN_CHECK(total > 0.0, "categorical weights sum to zero");
  const double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace fhdnn
