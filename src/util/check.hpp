// FHDNN_CHECKED contract instrumentation (DESIGN.md §10).
//
// Two tiers of checking exist in this codebase:
//   * FHDNN_CHECK (util/error.hpp) — API contract checks that run in every
//     build type. Shape validation on kernel entry, aliasing overlap
//     detection, bounds checks on Tensor::at — always on.
//   * FHDNN_CHECKED_ASSERT (this header) — deeper invariant re-validation
//     that is too hot for release builds: forced Tensor shape↔data
//     re-validation on `_into` entry and Module::forward/backward entry,
//     workspace Scope leak detection at client/batch boundaries, and the
//     FP-environment guard. Enabled by configuring with -DFHDNN_CHECKED=ON
//     (which defines the FHDNN_CHECKED macro); compiles to nothing
//     otherwise.
//
// CI runs the full test suite with FHDNN_CHECKED combined with
// ASan/UBSan, so every contract here is exercised against the goldens on
// each merge.
#pragma once

#include "util/error.hpp"

namespace fhdnn::util {

/// True in builds configured with -DFHDNN_CHECKED=ON.
constexpr bool checked_build() {
#ifdef FHDNN_CHECKED
  return true;
#else
  return false;
#endif
}

void assert_fp_environment();  // fpenv.hpp has the full contract

/// Entry-point hook for long-lived engines (RoundEngine, trainers): in
/// checked builds, rejects a hostile floating-point environment (FTZ/DAZ,
/// non-nearest rounding) before any arithmetic runs; no-op otherwise.
inline void checked_startup() {
#ifdef FHDNN_CHECKED
  assert_fp_environment();
#endif
}

}  // namespace fhdnn::util

#ifdef FHDNN_CHECKED
/// Checked-build invariant assert: evaluates and throws like FHDNN_CHECK.
#define FHDNN_CHECKED_ASSERT(cond, ...) FHDNN_CHECK(cond, __VA_ARGS__)
/// Re-validate a Tensor's shape↔data invariant (checked builds only).
#define FHDNN_CHECKED_TENSOR(t) (t).assert_invariant()
#else
/// Compiled out; `sizeof` keeps the operands "used" without evaluating
/// them, so -Werror builds don't trip unused-variable warnings.
#define FHDNN_CHECKED_ASSERT(cond, ...) \
  do {                                  \
    (void)sizeof(!(cond));              \
  } while (false)
#define FHDNN_CHECKED_TENSOR(t) \
  do {                          \
    (void)sizeof(&(t));         \
  } while (false)
#endif
