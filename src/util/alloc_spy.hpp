// Heap-allocation instrumentation for the zero-allocation tests and bench.
//
// Linking `alloc_spy.cpp` into a target replaces the global operator
// new/delete with counting versions. `alloc_spy_snapshot()` reads the
// process-wide counters; the difference between two snapshots bounds the
// heap traffic of the code between them. Only test_memory and micro_memory
// link the spy — the library itself never depends on it.
#pragma once

#include <cstdint>

namespace fhdnn::util {

struct AllocSpySnapshot {
  std::uint64_t count = 0;  ///< operator new calls
  std::uint64_t bytes = 0;  ///< total bytes requested
};

/// Current counters. Only targets that compile alloc_spy.cpp may call this
/// (the symbol lives there).
AllocSpySnapshot alloc_spy_snapshot();

}  // namespace fhdnn::util
