#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/error.hpp"

namespace fhdnn {

namespace {

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "bool";
    case 3: return "string";
  }
  return "?";
}

}  // namespace

void CliFlags::define_int(const std::string& name, std::int64_t default_value,
                          const std::string& help) {
  FHDNN_CHECK(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{Kind::Int, std::to_string(default_value), help};
  order_.push_back(name);
}

void CliFlags::define_double(const std::string& name, double default_value,
                             const std::string& help) {
  FHDNN_CHECK(!flags_.count(name), "duplicate flag --" << name);
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Kind::Double, os.str(), help};
  order_.push_back(name);
}

void CliFlags::define_bool(const std::string& name, bool default_value,
                           const std::string& help) {
  FHDNN_CHECK(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{Kind::Bool, default_value ? "true" : "false", help};
  order_.push_back(name);
}

void CliFlags::define_string(const std::string& name,
                             const std::string& default_value,
                             const std::string& help) {
  FHDNN_CHECK(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{Kind::String, default_value, help};
  order_.push_back(name);
}

void CliFlags::set_value(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  FHDNN_CHECK(it != flags_.end(), "unknown flag --" << name);
  Flag& f = it->second;
  switch (f.kind) {
    case Kind::Int: {
      std::size_t pos = 0;
      try {
        (void)std::stoll(value, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      FHDNN_CHECK(pos == value.size() && !value.empty(),
                  "--" << name << " expects an integer, got '" << value << "'");
      break;
    }
    case Kind::Double: {
      std::size_t pos = 0;
      try {
        (void)std::stod(value, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      FHDNN_CHECK(pos == value.size() && !value.empty(),
                  "--" << name << " expects a number, got '" << value << "'");
      break;
    }
    case Kind::Bool:
      FHDNN_CHECK(value == "true" || value == "false" || value == "1" ||
                      value == "0",
                  "--" << name << " expects true/false, got '" << value << "'");
      break;
    case Kind::String:
      break;
  }
  f.value = value;
}

bool CliFlags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage(argv[0]);
      return false;
    }
    FHDNN_CHECK(arg.rfind("--", 0) == 0, "unexpected argument '" << arg << "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set_value(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = flags_.find(arg);
    FHDNN_CHECK(it != flags_.end(), "unknown flag --" << arg);
    if (it->second.kind == Kind::Bool) {
      // Bare boolean flag; also accept a following true/false token.
      if (i + 1 < argc && (std::string(argv[i + 1]) == "true" ||
                           std::string(argv[i + 1]) == "false")) {
        set_value(arg, argv[++i]);
      } else {
        set_value(arg, "true");
      }
    } else {
      FHDNN_CHECK(i + 1 < argc, "--" << arg << " needs a value");
      set_value(arg, argv[++i]);
    }
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  FHDNN_CHECK(it != flags_.end(), "flag --" << name << " was never defined");
  FHDNN_CHECK(it->second.kind == kind,
              "flag --" << name << " is a "
                        << kind_name(static_cast<int>(it->second.kind))
                        << ", requested " << kind_name(static_cast<int>(kind)));
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::Int).value);
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::Double).value);
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string& v = find(name, Kind::Bool).value;
  return v == "true" || v == "1";
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return find(name, Kind::String).value;
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (" << kind_name(static_cast<int>(f.kind))
       << ", default " << f.value << ")\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace fhdnn
