// AVX2 kernel tier. Compiled with -mavx2 -mpopcnt -mno-fma
// -ffp-contract=off (see src/util/CMakeLists.txt): the float kernels must
// emit separate multiply and add instructions so every output element sees
// the exact IEEE-754 operation sequence of the scalar oracle — FMA
// contraction would change results in the last ulp and break the golden
// histories. The bit kernels (sign-pack via compare+movemask, Muła
// nibble-LUT popcount) are integer-exact by construction.
//
// The entire file is guarded by __AVX2__: on non-x86 targets (or when the
// build system did not pass the flags) the table resolver returns null and
// the dispatcher keeps the scalar tier.
#include "util/simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace fhdnn::simd::detail {

namespace {

void axpy_avx2(float* y, float a, const float* x, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale_avx2(float* out, const float* x, float a, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) out[i] = x[i] * a;
}

void add_avx2(float* out, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_avx2(float* out, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void mul_avx2(float* out, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void pack_signs_avx2(const float* src, std::uint64_t* dst,
                     std::int64_t nbits) {
  // _CMP_GE_OQ matches the scalar `v >= 0.0f`: true for +0/-0, false for
  // NaN — so NaN packs as a 0 bit (-1 on unpack) in every tier.
  const __m256 zero = _mm256_setzero_ps();
  const std::int64_t full_words = nbits / 64;
  for (std::int64_t w = 0; w < full_words; ++w) {
    std::uint64_t word = 0;
    for (int g = 0; g < 8; ++g) {
      const __m256 v = _mm256_loadu_ps(src + w * 64 + g * 8);
      const unsigned m = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_GE_OQ)));
      word |= static_cast<std::uint64_t>(m) << (g * 8);
    }
    dst[w] = word;
  }
  const std::int64_t rem = nbits - full_words * 64;
  if (rem > 0) {
    std::uint64_t word = 0;
    for (std::int64_t i = 0; i < rem; ++i) {
      if (src[full_words * 64 + i] >= 0.0F) word |= (1ULL << i);
    }
    dst[full_words] = word;
  }
}

void unpack_signs_avx2(const std::uint64_t* src, float* dst,
                       std::int64_t nbits) {
  const __m256i bit_select =
      _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256 pos = _mm256_set1_ps(1.0F);
  const __m256 neg = _mm256_set1_ps(-1.0F);
  std::int64_t i = 0;
  for (; i + 8 <= nbits; i += 8) {
    const unsigned byte =
        static_cast<unsigned>((src[i / 64] >> (i % 64)) & 0xFFULL);
    const __m256i v = _mm256_set1_epi32(static_cast<int>(byte));
    const __m256i hit = _mm256_cmpeq_epi32(
        _mm256_and_si256(v, bit_select), bit_select);
    _mm256_storeu_ps(dst + i,
                     _mm256_blendv_ps(neg, pos, _mm256_castsi256_ps(hit)));
  }
  for (; i < nbits; ++i) {
    dst[i] = (src[i / 64] >> (i % 64)) & 1ULL ? 1.0F : -1.0F;
  }
}

void xor_words_avx2(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* out, std::int64_t nwords) {
  std::int64_t w = 0;
  for (; w + 4 <= nwords; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w),
                        _mm256_xor_si256(va, vb));
  }
  for (; w < nwords; ++w) out[w] = a[w] ^ b[w];
}

/// Muła nibble-LUT popcount of one 256-bit lane, returned as 4 partial
/// 64-bit sums (one per 64-bit element).
__m256i popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

std::uint64_t horizontal_sum_epi64(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

std::uint64_t popcount_words_avx2(const std::uint64_t* a,
                                  std::int64_t nwords) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t w = 0;
  for (; w + 4 <= nwords; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    acc = _mm256_add_epi64(acc, popcount256(v));
  }
  std::uint64_t total = horizontal_sum_epi64(acc);
  for (; w < nwords; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w]));
  }
  return total;
}

std::uint64_t hamming_words_avx2(const std::uint64_t* a,
                                 const std::uint64_t* b, std::int64_t nwords) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t w = 0;
  for (; w + 4 <= nwords; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_add_epi64(acc, popcount256(_mm256_xor_si256(va, vb)));
  }
  std::uint64_t total = horizontal_sum_epi64(acc);
  for (; w < nwords; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

constexpr Kernels kAvx2 = {
    axpy_avx2,         scale_avx2,     add_avx2,
    sub_avx2,          mul_avx2,       pack_signs_avx2,
    unpack_signs_avx2, xor_words_avx2, popcount_words_avx2,
    hamming_words_avx2,
};

}  // namespace

const Kernels* avx2_table() { return &kAvx2; }

}  // namespace fhdnn::simd::detail

#else  // !__AVX2__

namespace fhdnn::simd::detail {

const Kernels* avx2_table() { return nullptr; }

}  // namespace fhdnn::simd::detail

#endif
