// Minimal leveled logger.
//
// Experiments and the FL simulator use this to emit progress; tests set the
// level to Warn to keep ctest output clean. Not thread-safe by design — the
// simulator is single-threaded per experiment.
#pragma once

#include <sstream>
#include <string>

namespace fhdnn {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (appends '\n') to stderr if `level` passes the filter.
void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace fhdnn
