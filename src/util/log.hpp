// Minimal leveled logger, safe to call from any thread.
//
// Experiments and the FL simulator use this to emit progress; tests set the
// level to Warn to keep ctest output clean.  The fhdnnd server logs from the
// reactor thread and per-worker client threads concurrently, so the sink
// guarantees: the level filter is an atomic load, and every log line is
// emitted as a single write under one lock — concurrent lines interleave
// whole, never character by character.
//
// Per-connection / per-source prefixes: construct the line with a source
// label (`log_info("conn-3") << ...`) and the sink renders
// `[INFO ] [conn-3] ...` so interleaved server logs stay attributable.
#pragma once

#include <sstream>
#include <string>

namespace fhdnn {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped.  Atomic: may be
/// flipped while other threads are logging.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (appends '\n') to stderr if `level` passes the filter.
/// The line is written with a single locked write so concurrent callers
/// never interleave within a line.
void log_message(LogLevel level, const std::string& msg);

/// log_message with a source prefix (connection id, subsystem, binary name).
void log_message(LogLevel level, const std::string& source,
                 const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(LogLevel level, std::string source)
      : level_(level), source_(std::move(source)) {}
  ~LogLine() {
    if (source_.empty()) {
      log_message(level_, os_.str());
    } else {
      log_message(level_, source_, os_.str());
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string source_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

inline detail::LogLine log_debug(std::string source) {
  return {LogLevel::Debug, std::move(source)};
}
inline detail::LogLine log_info(std::string source) {
  return {LogLevel::Info, std::move(source)};
}
inline detail::LogLine log_warn(std::string source) {
  return {LogLevel::Warn, std::move(source)};
}
inline detail::LogLine log_error(std::string source) {
  return {LogLevel::Error, std::move(source)};
}

}  // namespace fhdnn
