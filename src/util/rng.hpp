// Deterministic random number generation for experiments.
//
// All stochastic components of the library (data synthesis, projection
// matrices, client sampling, channel noise, ...) draw from an `fhdnn::Rng`.
// Reproducibility rules:
//   * Every experiment owns a root seed.
//   * Independent components derive *named sub-streams* via `Rng::fork`,
//     which mixes the parent state with a label hash; two forks with
//     different labels are statistically independent, and the same
//     (seed, label) pair always produces the same stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fhdnn {

/// Full generator state: the xoshiro256** words plus the cached Box-Muller
/// sample. Restoring it resumes the stream mid-sequence bit-exactly — the
/// snapshot/resume path depends on this.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Counter-based deterministic RNG built on splitmix64 state advancement and
/// xoshiro256** output. Cheap to copy; copies continue independently.
class Rng {
 public:
  /// Seeds the generator. Identical seeds give identical streams on every
  /// platform (no std:: distribution objects are used internally).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derive an independent child stream labeled by `label`. Deterministic in
  /// (current state, label); does not perturb this generator.
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t randint(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (deterministic, platform independent).
  double normal();
  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);
  /// True with probability p.
  bool bernoulli(double p);

  /// Geometric variate on {1, 2, ...}: number of Bernoulli(p) trials up to
  /// and including the first success. Lets bit-error channels sweep long
  /// bitstreams in O(#flips) instead of O(#bits).
  std::uint64_t geometric(double p);

  /// Fill `out` with i.i.d. N(mean, stddev^2) samples.
  void fill_normal(std::vector<float>& out, float mean, float stddev);
  /// Fill `out` with i.i.d. U[lo, hi) samples.
  void fill_uniform(std::vector<float>& out, float lo, float hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          randint(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Draw from a Dirichlet(alpha, ..., alpha) distribution of dimension k.
  std::vector<double> dirichlet(double alpha, std::size_t k);

  /// Draw an index in [0, weights.size()) with probability proportional to
  /// weights[i] (weights need not be normalized; must be non-negative with a
  /// positive sum).
  std::size_t categorical(const std::vector<double>& weights);

  /// Capture the exact stream position (see RngState).
  [[nodiscard]] RngState state() const {
    return RngState{{s_[0], s_[1], s_[2], s_[3]}, has_cached_normal_,
                    cached_normal_};
  }

  /// Restore a previously captured stream position.
  void set_state(const RngState& st) {
    std::copy(std::begin(st.s), std::end(st.s), std::begin(s_));
    has_cached_normal_ = st.has_cached_normal;
    cached_normal_ = st.cached_normal;
  }

 private:
  // xoshiro256** state.
  std::uint64_t s_[4];

  // Cached second Box-Muller sample.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fhdnn
