// Runtime CPU-feature probe and SIMD-tier selection (DESIGN.md §11).
//
// The library ships one binary with several implementations of its hot
// kernels (util/simd.hpp): a portable scalar tier that doubles as the
// golden oracle, and wider tiers (NEON on aarch64, AVX2 / AVX-512 on
// x86-64) compiled into dedicated translation units with the matching
// target flags. Which tier actually runs is a *runtime* decision:
//   * `detected_simd()` probes the executing CPU once (cpuid on x86-64,
//     architecture macros on aarch64) and caches the best supported tier;
//   * `active_simd()` is the tier kernels dispatch on — the detected tier,
//     optionally lowered by the FHDNN_SIMD environment variable
//     (`scalar`, `neon`, `avx2`, `avx512`, or `native`) or by
//     `set_simd_tier()` from tests and benches.
// A request for a tier the CPU cannot execute is clamped down to the best
// supported one (never up), so forcing `avx512` on an AVX2-only machine
// degrades gracefully instead of faulting.
//
// Every tier is bit-exact by contract: float kernels perform the same
// per-element IEEE-754 operations in the same order (no FMA contraction,
// no reassociated reductions), and the bit kernels are integer-exact, so
// golden histories do not depend on the tier that produced them. The
// contract is pinned by the packed-vs-scalar and SIMD-vs-scalar
// equivalence tests (tests/test_packed.cpp, tests/test_properties.cpp).
#pragma once

#include <string_view>

namespace fhdnn::util {

/// SIMD dispatch tiers, ordered by preference within an architecture.
/// Scalar is always available; Neon exists only on aarch64, Avx2/Avx512
/// only on x86-64.
enum class SimdTier { Scalar = 0, Neon = 1, Avx2 = 2, Avx512 = 3 };

/// Best tier the executing CPU supports (probed once, cached).
SimdTier detected_simd();

/// The tier kernel dispatch uses right now: `detected_simd()` clamped by
/// the FHDNN_SIMD environment variable (read once on first call) and by
/// any subsequent `set_simd_tier()`.
SimdTier active_simd();

/// Force the active tier (test/bench hook). Requests above what the CPU
/// supports are clamped to `detected_simd()`; returns the tier actually
/// activated.
SimdTier set_simd_tier(SimdTier tier);

/// Parse `scalar` / `neon` / `avx2` / `avx512` / `native` (case-sensitive).
/// `native` means "best detected". Throws fhdnn::Error on anything else.
SimdTier parse_simd_tier(std::string_view name);

/// Lower-case display name of a tier ("scalar", "neon", "avx2", "avx512").
std::string_view simd_tier_name(SimdTier tier);

}  // namespace fhdnn::util
