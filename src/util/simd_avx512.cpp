// AVX-512 kernel tier: 16-lane float kernels. Compiled with
// -mavx512f -mavx512bw -mno-fma -ffp-contract=off (src/util/CMakeLists.txt)
// for the same bit-exactness contract as the AVX2 tier — separate multiply
// and add per element, no reassociated reductions.
//
// The bit kernels are deliberately absent from this table: the dispatcher
// overlays AVX-512 on top of the resolved AVX2 table (an AVX-512 CPU
// always supports AVX2), and the Muła popcount there already saturates
// load bandwidth; the VPOPCNTDQ extension that would beat it is not part
// of the avx512f+bw baseline this TU targets.
#include "util/simd.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

namespace fhdnn::simd::detail {

namespace {

void axpy_avx512(float* y, float a, const float* x, std::int64_t n) {
  const __m512 va = _mm512_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 vx = _mm512_loadu_ps(x + i);
    const __m512 vy = _mm512_loadu_ps(y + i);
    _mm512_storeu_ps(y + i, _mm512_add_ps(vy, _mm512_mul_ps(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale_avx512(float* out, const float* x, float a, std::int64_t n) {
  const __m512 va = _mm512_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i, _mm512_mul_ps(_mm512_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) out[i] = x[i] * a;
}

void add_avx512(float* out, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        out + i, _mm512_add_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_avx512(float* out, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        out + i, _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void mul_avx512(float* out, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        out + i, _mm512_mul_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void pack_signs_avx512(const float* src, std::uint64_t* dst,
                       std::int64_t nbits) {
  // One 16-bit compare mask per vector; four vectors fill a 64-bit word.
  // _CMP_GE_OQ matches scalar `>=`: NaN packs as 0, ±0 packs as 1.
  const __m512 zero = _mm512_setzero_ps();
  const std::int64_t full_words = nbits / 64;
  for (std::int64_t w = 0; w < full_words; ++w) {
    std::uint64_t word = 0;
    for (int g = 0; g < 4; ++g) {
      const __m512 v = _mm512_loadu_ps(src + w * 64 + g * 16);
      const std::uint64_t m = _mm512_cmp_ps_mask(v, zero, _CMP_GE_OQ);
      word |= m << (g * 16);
    }
    dst[w] = word;
  }
  const std::int64_t rem = nbits - full_words * 64;
  if (rem > 0) {
    std::uint64_t word = 0;
    for (std::int64_t i = 0; i < rem; ++i) {
      if (src[full_words * 64 + i] >= 0.0F) word |= (1ULL << i);
    }
    dst[full_words] = word;
  }
}

void unpack_signs_avx512(const std::uint64_t* src, float* dst,
                         std::int64_t nbits) {
  const __m512 pos = _mm512_set1_ps(1.0F);
  const __m512 neg = _mm512_set1_ps(-1.0F);
  std::int64_t i = 0;
  for (; i + 16 <= nbits; i += 16) {
    const __mmask16 m =
        static_cast<__mmask16>((src[i / 64] >> (i % 64)) & 0xFFFFULL);
    _mm512_storeu_ps(dst + i, _mm512_mask_blend_ps(m, neg, pos));
  }
  for (; i < nbits; ++i) {
    dst[i] = (src[i / 64] >> (i % 64)) & 1ULL ? 1.0F : -1.0F;
  }
}

constexpr Kernels kAvx512 = {
    axpy_avx512, scale_avx512,      add_avx512,
    sub_avx512,  mul_avx512,        pack_signs_avx512,
    unpack_signs_avx512, nullptr /*xor_words: AVX2*/,
    nullptr /*popcount_words: AVX2*/, nullptr /*hamming_words: AVX2*/,
};

}  // namespace

const Kernels* avx512_table() { return &kAvx512; }

}  // namespace fhdnn::simd::detail

#else  // !(__AVX512F__ && __AVX512BW__)

namespace fhdnn::simd::detail {

const Kernels* avx512_table() { return nullptr; }

}  // namespace fhdnn::simd::detail

#endif
