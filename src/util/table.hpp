// Aligned plain-text tables for bench/experiment stdout, mirroring the rows
// the paper's tables and figure series report.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fhdnn {

/// Collects rows of strings and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> columns);

  /// Append a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format mixed cells.
  static std::string cell(const std::string& s) { return s; }
  static std::string cell(double v);
  static std::string cell(int v) { return std::to_string(v); }
  static std::string cell(std::size_t v) { return std::to_string(v); }

  /// Render with a header underline and two-space gutters.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner used by every bench binary:
///   ==== Fig. 8: packet loss ====
void print_banner(std::ostream& os, const std::string& title);

}  // namespace fhdnn
