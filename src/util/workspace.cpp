#include "util/workspace.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/error.hpp"

namespace fhdnn::util {

namespace {

/// Bump granularity: keeps every returned pointer 16-byte aligned.
constexpr std::size_t kAlign = 16;
/// Smallest backing block; growth doubles total capacity from here.
constexpr std::size_t kMinBlock = 64 * 1024;

std::size_t round_up(std::size_t bytes) {
  return (bytes + kAlign - 1) & ~(kAlign - 1);
}

}  // namespace

void* Workspace::allocate(std::size_t bytes) {
  const std::size_t need = round_up(bytes);
  ++stats_.alloc_calls;
  // Bump the active block, or advance to a later (already rewound) block
  // that fits. Skipped tail space is reclaimed at the next reset().
  while (active_ < blocks_.size()) {
    Block& b = blocks_[active_];
    if (b.size - b.used >= need) {
      void* p = b.data.get() + b.used;
      b.used += need;
      stats_.bytes_in_use += need;
      stats_.high_water_bytes =
          std::max(stats_.high_water_bytes, stats_.bytes_in_use);
      return p;
    }
    if (active_ + 1 == blocks_.size()) break;
    ++active_;
  }
  // Warmup growth: each new block at least doubles total capacity so the
  // arena converges in O(log(model size)) allocations.
  const std::size_t size =
      std::max({need, static_cast<std::size_t>(stats_.capacity_bytes),
                kMinBlock});
  blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, need});
  active_ = blocks_.size() - 1;
  ++stats_.heap_allocations;
  stats_.capacity_bytes += size;
  stats_.bytes_in_use += need;
  stats_.high_water_bytes =
      std::max(stats_.high_water_bytes, stats_.bytes_in_use);
  return blocks_.back().data.get();
}

float* Workspace::floats(std::int64_t n) {
  FHDNN_CHECK(n >= 0, "workspace floats(" << n << ")");
  return static_cast<float*>(
      allocate(static_cast<std::size_t>(n) * sizeof(float)));
}

std::int64_t* Workspace::indices(std::int64_t n) {
  FHDNN_CHECK(n >= 0, "workspace indices(" << n << ")");
  return static_cast<std::int64_t*>(
      allocate(static_cast<std::size_t>(n) * sizeof(std::int64_t)));
}

void Workspace::reset() {
  FHDNN_CHECKED_ASSERT(scope_depth_ == 0,
                       "workspace reset() with "
                           << scope_depth_
                           << " Scope(s) still open — a Scope leaked across "
                              "a client/batch boundary");
  ++stats_.resets;
  if (blocks_.size() > 1) {
    // Coalesce fragmented warmup growth into one contiguous block so the
    // steady state never needs to hop blocks again.
    const auto total = static_cast<std::size_t>(stats_.capacity_bytes);
    blocks_.clear();
    blocks_.push_back(Block{std::make_unique<std::byte[]>(total), total, 0});
    ++stats_.heap_allocations;
  } else if (!blocks_.empty()) {
    blocks_.front().used = 0;
  }
  active_ = 0;
  stats_.bytes_in_use = 0;
}

Workspace::Scope::Scope(Workspace& ws)
    : ws_(ws),
      block_(ws.active_),
      used_(ws.blocks_.empty() ? 0 : ws.blocks_[ws.active_].used) {
  ++ws_.scope_depth_;
}

Workspace::Scope::~Scope() {
  --ws_.scope_depth_;
  auto& blocks = ws_.blocks_;
  for (std::size_t i = block_ + 1; i < blocks.size(); ++i) {
    ws_.stats_.bytes_in_use -= blocks[i].used;
    blocks[i].used = 0;
  }
  if (!blocks.empty()) {
    ws_.stats_.bytes_in_use -= blocks[block_].used - used_;
    blocks[block_].used = used_;
    ws_.active_ = block_;
  }
}

Workspace& tls_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace fhdnn::util
