#include "features/extractor.hpp"

#include <algorithm>
#include <cmath>

#include "nn/layers.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fhdnn::features {

namespace {

constexpr std::int64_t kExtractBatch = 64;

}  // namespace

FrozenFeatureExtractor::FrozenFeatureExtractor(Config config)
    : config_(config) {
  FHDNN_CHECK(config_.in_channels > 0 && config_.image_hw >= 8 &&
                  config_.conv_width > 0 && config_.output_dim > 0,
              "FrozenFeatureExtractor config invalid");
  Rng rng(config_.seed);
  Rng trunk_rng = rng.fork("trunk");
  const std::int64_t w1 = config_.conv_width;
  const std::int64_t w2 = 2 * w1;
  const std::int64_t w3 = 4 * w1;
  trunk_channels_ = w3;
  trunk_ = std::make_unique<nn::Sequential>();
  trunk_->add(std::make_unique<nn::Conv2d>(config_.in_channels, w1, 3, 2, 1,
                                           trunk_rng));
  trunk_->add(std::make_unique<nn::ReLU>());
  trunk_->add(std::make_unique<nn::Conv2d>(w1, w2, 3, 2, 1, trunk_rng));
  trunk_->add(std::make_unique<nn::ReLU>());
  trunk_->add(std::make_unique<nn::Conv2d>(w2, w3, 3, 2, 1, trunk_rng));
  trunk_->add(std::make_unique<nn::ReLU>());
  trunk_->add(std::make_unique<nn::Flatten>());
  trunk_->set_training(false);

  // Final feature-map geometry: three stride-2 convs with padding 1.
  std::int64_t hw = config_.image_hw;
  for (int layer = 0; layer < 3; ++layer) hw = (hw + 2 - 3) / 2 + 1;
  trunk_out_dim_ = w3 * hw * hw;

  Rng exp_rng = rng.fork("expansion");
  // Random-features projection with tanh: scale ~ 1/sqrt(fan_in).
  expansion_ = Tensor::randn(
      Shape{config_.output_dim, trunk_out_dim_}, exp_rng,
      1.0F / std::sqrt(static_cast<float>(trunk_out_dim_)));
  expansion_bias_ = Tensor::rand(Shape{config_.output_dim}, exp_rng, -0.1F,
                                 0.1F);
  mean_ = Tensor(Shape{config_.output_dim});
  scale_ = Tensor::ones(Shape{config_.output_dim});
}

void FrozenFeatureExtractor::extract_into(const Tensor& images,
                                          TensorView out) const {
  FHDNN_CHECK(images.ndim() == 4 && images.dim(1) == config_.in_channels &&
                  images.dim(2) == config_.image_hw &&
                  images.dim(3) == config_.image_hw,
              "extract expects (N," << config_.in_channels << ","
                                    << config_.image_hw << ","
                                    << config_.image_hw << "), got "
                                    << shape_to_string(images.shape()));
  const std::int64_t n = images.dim(0);
  FHDNN_CHECK(out.ndim() == 2 && out.dim(0) == n &&
                  out.dim(1) == config_.output_dim,
              "extract output shape " << out.shape_string());
  for (std::int64_t begin = 0; begin < n; begin += kExtractBatch) {
    const std::int64_t len = std::min(kExtractBatch, n - begin);
    batch_.ensure_shape({len, config_.in_channels, config_.image_hw,
                         config_.image_hw});
    const std::int64_t per = batch_.numel() / len;
    std::copy_n(images.data().begin() + static_cast<std::ptrdiff_t>(begin * per),
                len * per, batch_.data().begin());
    const Tensor& flat = trunk_->forward(batch_);  // (len, trunk_out_dim)
    z_.ensure_shape({len, config_.output_dim});
    ops::linear_forward_into(flat, expansion_, expansion_bias_, z_);
    for (auto& v : z_.data()) v = std::tanh(v);
    if (standardized_) {
      for (std::int64_t i = 0; i < len; ++i) {
        for (std::int64_t j = 0; j < config_.output_dim; ++j) {
          z_(i, j) = (z_(i, j) - mean_(j)) * scale_(j);
        }
      }
    }
    std::copy_n(z_.data().begin(), len * config_.output_dim,
                out.data() + begin * config_.output_dim);
  }
}

Tensor FrozenFeatureExtractor::extract(const Tensor& images) const {
  Tensor out(Shape{images.dim(0), config_.output_dim});
  extract_into(images, out);
  return out;
}

void FrozenFeatureExtractor::fit_standardization(
    const Tensor& calibration_images) {
  FHDNN_CHECK(!standardized_, "standardization already fit");
  const Tensor z = extract(calibration_images);
  const std::int64_t n = z.dim(0);
  FHDNN_CHECK(n >= 2, "need at least 2 calibration images");
  for (std::int64_t j = 0; j < config_.output_dim; ++j) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double v = z(i, j);
      sum += v;
      sum_sq += v * v;
    }
    const double mu = sum / static_cast<double>(n);
    const double var =
        std::max(0.0, sum_sq / static_cast<double>(n) - mu * mu);
    mean_(j) = static_cast<float>(mu);
    scale_(j) = static_cast<float>(1.0 / std::sqrt(var + 1e-6));
  }
  standardized_ = true;
}

std::uint64_t FrozenFeatureExtractor::macs_per_image() const {
  // Three stride-2 convs + the expansion matmul.
  std::uint64_t macs = 0;
  std::int64_t hw = config_.image_hw;
  std::int64_t ic = config_.in_channels;
  std::int64_t oc = config_.conv_width;
  for (int layer = 0; layer < 3; ++layer) {
    const std::int64_t out_hw = (hw + 2 - 3) / 2 + 1;
    macs += static_cast<std::uint64_t>(out_hw * out_hw * oc * ic * 9);
    hw = out_hw;
    ic = oc;
    oc *= 2;
  }
  macs += static_cast<std::uint64_t>(trunk_out_dim_ * config_.output_dim);
  return macs;
}

}  // namespace fhdnn::features
