// Frozen feature extractor — the pre-trained SimCLR stand-in (DESIGN.md §3).
//
// The paper uses a SimCLR-pretrained ResNet whose weights are (a) fixed,
// (b) identical on every client, and (c) never transmitted. What FHDnn
// needs from it is a deterministic, shared, class-informative map from
// images to feature vectors. We realize that with a frozen random
// convolutional network (random-features construction):
//
//   conv3x3 s2 -> ReLU -> conv3x3 s2 -> ReLU -> conv3x3 s2 -> ReLU
//   -> flatten -> frozen random linear projection -> tanh
//   -> (optional) standardization
//
// The flattened final conv map keeps spatial structure (a global pool
// destroys the class-discriminative layout), mirroring how SimCLR features
// are taken from the full penultimate representation.
//
// All weights derive from a single seed, so any two parties constructing an
// extractor with the same config hold bit-identical weights — mirroring how
// FHDnn clients all ship with the same pretrained CNN. `fit_standardization`
// plays the role of the pretraining statistics: it is fit once (on any
// calibration sample) and then frozen.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"
#include "tensor/view.hpp"

namespace fhdnn::features {

class FrozenFeatureExtractor {
 public:
  struct Config {
    std::int64_t in_channels = 1;
    std::int64_t image_hw = 28;
    std::int64_t conv_width = 16;   ///< first conv's channels (doubles twice)
    std::int64_t output_dim = 512;  ///< feature dimension n fed to the HD encoder
    std::uint64_t seed = 0x51AC1ULL; ///< shared "pretraining" seed
  };

  explicit FrozenFeatureExtractor(Config config);

  /// (N, C, H, W) -> (N, output_dim). Runs in inference mode; never updates
  /// any state. Batches internally to bound peak memory. The `_into` form
  /// writes into a caller-owned (N, output_dim) buffer and — together with
  /// the reused internal batch scratch — is allocation-free at steady state.
  /// Aliasing: out must not overlap images (rows are staged through the
  /// extractor's CNN before the copy-out).
  Tensor extract(const Tensor& images) const;
  void extract_into(const Tensor& images, TensorView out) const;

  /// Fit the output standardization (per-dimension mean/scale) on a
  /// calibration batch, then freeze it. May be called at most once.
  void fit_standardization(const Tensor& calibration_images);
  bool standardized() const { return standardized_; }

  std::int64_t output_dim() const { return config_.output_dim; }
  const Config& config() const { return config_; }

  /// Multiply-accumulate count for one image through the extractor
  /// (used by the perf model for Table 1).
  std::uint64_t macs_per_image() const;

 private:
  Config config_;
  // Mutable because nn::Module::forward caches activations; logically const
  // for a frozen extractor. batch_/z_ are reused per-minibatch scratch.
  mutable std::unique_ptr<nn::Sequential> trunk_;
  mutable Tensor batch_;
  mutable Tensor z_;
  Tensor expansion_;  // (output_dim, trunk_out_dim) frozen random matrix
  Tensor expansion_bias_;  // (output_dim)
  Tensor mean_;   // (output_dim) standardization mean
  Tensor scale_;  // (output_dim) standardization 1/std
  bool standardized_ = false;
  std::int64_t trunk_channels_ = 0;
  std::int64_t trunk_out_dim_ = 0;  // channels * spatial after flatten
};

}  // namespace fhdnn::features
