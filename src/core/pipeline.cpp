#include "core/pipeline.hpp"

#include <algorithm>

#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace fhdnn::core {

namespace {

constexpr std::int64_t kCalibrationImages = 256;

/// First min(n, kCalibrationImages) training images as the standardization
/// calibration batch (any sample works; this is deterministic).
Tensor calibration_batch(const data::Dataset& train) {
  const std::int64_t n = std::min<std::int64_t>(kCalibrationImages,
                                                train.size());
  std::vector<std::size_t> idx(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return train.gather(idx).x;
}

}  // namespace

EncodedFederatedData encode_for_fhdnn(const FhdnnConfig& model_config,
                                      const data::Dataset& train,
                                      const data::ClientIndices& parts,
                                      const data::Dataset& test) {
  FHDNN_CHECK(train.is_image() && test.is_image(),
              "FHDnn pipeline expects image datasets");
  FhdnnModel model(model_config);
  model.calibrate(calibration_batch(train));
  log_info() << "fhdnn: encoding " << parts.size() << " client shards (d="
             << model_config.hd_dim << ")";
  EncodedFederatedData enc;
  enc.num_classes = model_config.num_classes;
  enc.hd_dim = model_config.hd_dim;
  enc.clients.reserve(parts.size());
  for (const auto& part : parts) {
    enc.clients.push_back(model.encode_dataset(train.subset(part)));
  }
  enc.test = model.encode_dataset(test);
  return enc;
}

fl::TrainingHistory run_fhdnn_on_encoded(const EncodedFederatedData& enc,
                                         const FederatedParams& params,
                                         const channel::HdUplinkConfig& uplink) {
  fl::FedHdConfig cfg;
  cfg.n_clients = enc.clients.size();
  cfg.client_fraction = params.client_fraction;
  cfg.local_epochs = params.local_epochs;
  cfg.rounds = params.rounds;
  cfg.num_classes = enc.num_classes;
  cfg.hd_dim = enc.hd_dim;
  cfg.eval_every = params.eval_every;
  cfg.seed = params.seed;
  cfg.uplink = uplink;
  cfg.faults = params.faults;
  cfg.deadline = params.deadline;
  fl::FedHdTrainer trainer(enc.clients, enc.test, cfg);
  return trainer.run();
}

fl::TrainingHistory run_fhdnn_federated(const FhdnnConfig& model_config,
                                        const data::Dataset& train,
                                        const data::ClientIndices& parts,
                                        const data::Dataset& test,
                                        const FederatedParams& params,
                                        const channel::HdUplinkConfig& uplink) {
  const EncodedFederatedData enc =
      encode_for_fhdnn(model_config, train, parts, test);
  return run_fhdnn_on_encoded(enc, params, uplink);
}

fl::TrainingHistory run_cnn_federated(const CnnParams& cnn,
                                      const data::Dataset& train,
                                      const data::ClientIndices& parts,
                                      const data::Dataset& test,
                                      const FederatedParams& params,
                                      const channel::Channel* uplink) {
  FHDNN_CHECK(train.is_image() && test.is_image(),
              "CNN pipeline expects image datasets");
  const std::int64_t in_channels = train.x.dim(1);
  const std::int64_t hw = train.x.dim(2);
  const std::int64_t classes = train.num_classes;
  fl::ModelFactory factory = [=](Rng& rng) -> std::unique_ptr<nn::Module> {
    if (cnn.arch == CnnArch::Cnn2) {
      return nn::make_cnn2(in_channels, hw, classes, rng);
    }
    return nn::make_mini_resnet(in_channels, classes, cnn.base_width, rng);
  };

  fl::FedAvgConfig cfg;
  cfg.n_clients = parts.size();
  cfg.client_fraction = params.client_fraction;
  cfg.local_epochs = params.local_epochs;
  cfg.batch_size = params.batch_size;
  cfg.rounds = params.rounds;
  cfg.lr = cnn.lr;
  cfg.momentum = cnn.momentum;
  cfg.weight_decay = cnn.weight_decay;
  cfg.eval_every = params.eval_every;
  cfg.seed = params.seed;
  cfg.faults = params.faults;
  cfg.deadline = params.deadline;

  fl::FedAvgTrainer trainer(factory, train, parts, test, cfg, uplink);
  return trainer.run();
}

std::uint64_t fhdnn_update_bytes(const FhdnnConfig& config) {
  channel::HdUplinkConfig raw;  // Perfect mode, raw float bits
  raw.use_quantizer = false;
  return fhdnn_update_bytes(config, raw);
}

std::uint64_t fhdnn_update_bytes(const FhdnnConfig& config,
                                 const channel::HdUplinkConfig& uplink) {
  return channel::hd_update_bytes(
      uplink, static_cast<std::uint64_t>(config.num_classes) *
                  static_cast<std::uint64_t>(config.hd_dim));
}

std::uint64_t cnn_update_bytes(const CnnParams& cnn, const data::Dataset& ds) {
  Rng rng(0);
  std::unique_ptr<nn::Module> model;
  if (cnn.arch == CnnArch::Cnn2) {
    model = nn::make_cnn2(ds.x.dim(1), ds.x.dim(2), ds.num_classes, rng);
  } else {
    model = nn::make_mini_resnet(ds.x.dim(1), ds.num_classes, cnn.base_width,
                                 rng);
  }
  return static_cast<std::uint64_t>(nn::state_size(*model)) * sizeof(float);
}

}  // namespace fhdnn::core
