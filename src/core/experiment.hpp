// Experiment scaffolding shared by benches and examples: named dataset
// construction, partitioning by mode, and paper-default hyperparameters.
#pragma once

#include <string>

#include "core/fhdnn.hpp"
#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"

namespace fhdnn::core {

/// Data distribution across clients.
enum class Distribution { Iid, NonIid };

Distribution distribution_from_string(const std::string& s);
std::string to_string(Distribution d);

/// A fully prepared federated experiment: train/test split + client shards.
struct ExperimentData {
  data::Dataset train;
  data::Dataset test;
  data::ClientIndices parts;
};

/// Build one of the named synthetic datasets ("mnist", "fashion", "cifar"),
/// split train/test (10% test), and partition across `n_clients`.
/// Non-IID uses the Dirichlet(0.3) split.
ExperimentData make_experiment_data(const std::string& dataset_name,
                                    std::int64_t total_examples,
                                    std::size_t n_clients, Distribution dist,
                                    std::uint64_t seed);

/// FhdnnConfig matching a dataset's geometry. feature_dim = 0 (default)
/// auto-selects per dataset: RGB data gets a wider extractor trunk and
/// larger feature dimension (the harder datasets need richer frozen
/// features, mirroring the paper's use of a full ResNet for CIFAR).
FhdnnConfig fhdnn_config_for(const data::Dataset& ds, std::int64_t hd_dim,
                             std::int64_t feature_dim = 0);

/// The CNN baseline the paper pairs with each dataset: Cnn2 for "mnist",
/// MiniResNet otherwise.
CnnParams cnn_params_for(const std::string& dataset_name);

/// Paper §4.3 defaults: E=2, C=0.2, B=10.
FederatedParams paper_default_params(std::size_t n_clients, int rounds,
                                     std::uint64_t seed);

}  // namespace fhdnn::core
