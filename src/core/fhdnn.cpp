#include "core/fhdnn.hpp"

// core assembles full trainers and is the one layer allowed to reach up
// into channel/fl (see DESIGN.md §15 on the layering manifest).
// fhdnn-lint: allow(layer-dag)
#include "channel/hd_uplink.hpp"
#include "tensor/view.hpp"
#include "util/error.hpp"
#include "util/workspace.hpp"

namespace fhdnn::core {

namespace {

features::FrozenFeatureExtractor::Config extractor_config(
    const FhdnnConfig& c) {
  features::FrozenFeatureExtractor::Config ec;
  ec.in_channels = c.in_channels;
  ec.image_hw = c.image_hw;
  ec.conv_width = c.conv_width;
  ec.output_dim = c.feature_dim;
  ec.seed = c.shared_seed;
  return ec;
}

hdc::RandomProjectionEncoder make_encoder(const FhdnnConfig& c) {
  Rng rng(c.shared_seed);
  Rng enc_rng = rng.fork("hd-projection");
  return hdc::RandomProjectionEncoder(c.feature_dim, c.hd_dim, enc_rng);
}

}  // namespace

FhdnnModel::FhdnnModel(FhdnnConfig config)
    : config_(config),
      extractor_(extractor_config(config)),
      encoder_(make_encoder(config)),
      classifier_(config.num_classes, config.hd_dim) {
  FHDNN_CHECK(config_.num_classes > 1 && config_.hd_dim > 0 &&
                  config_.feature_dim > 0,
              "FhdnnConfig invalid");
}

void FhdnnModel::calibrate(const Tensor& images) {
  extractor_.fit_standardization(images);
}

Tensor FhdnnModel::encode_images(const Tensor& images) const {
  // Stage the intermediate features in the thread's arena — only the
  // returned hypervectors own heap storage.
  util::Workspace& ws = util::tls_workspace();
  const util::Workspace::Scope scope(ws);
  const std::int64_t n = images.dim(0);
  TensorView z(ws.floats(n * config_.feature_dim), {n, config_.feature_dim});
  extractor_.extract_into(images, z);
  Tensor h(Shape{n, config_.hd_dim});
  encoder_.encode_into(z, h);
  return h;
}

fl::HdClientData FhdnnModel::encode_dataset(const data::Dataset& ds) const {
  FHDNN_CHECK(ds.is_image(), "encode_dataset expects image data");
  return fl::HdClientData{encode_images(ds.x), ds.labels};
}

std::int64_t FhdnnModel::train_local(const fl::HdClientData& data, int epochs) {
  FHDNN_CHECK(epochs > 0, "train_local epochs " << epochs);
  if (classifier_.prototypes().l2_norm() == 0.0) {
    classifier_.bundle(data.h, data.labels);
  }
  std::int64_t updates = 0;
  for (int e = 0; e < epochs; ++e) {
    updates = classifier_.refine_epoch(data.h, data.labels);
  }
  return updates;
}

std::vector<std::int64_t> FhdnnModel::predict(const Tensor& images) const {
  return classifier_.predict(encode_images(images));
}

double FhdnnModel::accuracy(const data::Dataset& ds) const {
  const auto enc = encode_dataset(ds);
  return classifier_.accuracy(enc.h, enc.labels);
}

std::uint64_t FhdnnModel::update_bytes() const {
  channel::HdUplinkConfig raw;  // Perfect mode, raw float bits
  raw.use_quantizer = false;
  return channel::hd_update_bytes(
      raw, static_cast<std::uint64_t>(classifier_.prototypes().numel()));
}

}  // namespace fhdnn::core
