// End-to-end federated pipelines: FHDnn and the CNN baseline, set up
// identically (same data, same partition, same hyperparameters E/B/C) so
// experiments compare like for like, as in paper §4.
#pragma once

#include <memory>
#include <string>

// core assembles full trainers and is the one layer allowed to reach up
// into channel/fl (see DESIGN.md §15 on the layering manifest).
// fhdnn-lint: allow(layer-dag)
#include "channel/channel.hpp"
#include "core/fhdnn.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
// fhdnn-lint: allow(layer-dag)
#include "fl/fedavg.hpp"
// fhdnn-lint: allow(layer-dag)
#include "fl/fedhd.hpp"

namespace fhdnn::core {

/// Shared federated hyperparameters (paper notation).
struct FederatedParams {
  std::size_t n_clients = 20;
  double client_fraction = 0.2;  ///< C
  int local_epochs = 2;          ///< E
  std::size_t batch_size = 10;   ///< B (CNN only; HD training is batch-free)
  int rounds = 20;
  std::uint64_t seed = 1;
  int eval_every = 1;
  /// Robustness layers, applied identically to both pipelines (off by
  /// default): per-client fault injection and deadline-based rounds.
  fl::FaultConfig faults;
  fl::DeadlineConfig deadline;
};

/// Hypervector-encoded federated data, ready for fl::FedHdTrainer. Produced
/// once per (dataset, partition); reusable across many uplink settings —
/// the frozen extractor and encoder never change.
struct EncodedFederatedData {
  std::vector<fl::HdClientData> clients;
  fl::HdClientData test;
  std::int64_t num_classes = 0;
  std::int64_t hd_dim = 0;
};

/// Build the shared frozen model, calibrate standardization on (at most 256
/// of) the training images, and encode every client shard plus the test set.
EncodedFederatedData encode_for_fhdnn(const FhdnnConfig& model_config,
                                      const data::Dataset& train,
                                      const data::ClientIndices& parts,
                                      const data::Dataset& test);

/// Run federated bundling on pre-encoded data with the given uplink.
fl::TrainingHistory run_fhdnn_on_encoded(const EncodedFederatedData& enc,
                                         const FederatedParams& params,
                                         const channel::HdUplinkConfig& uplink);

/// Run FHDnn federated training on raw image data (encode + train in one
/// call; prefer encode_for_fhdnn + run_fhdnn_on_encoded when sweeping
/// channel settings).
fl::TrainingHistory run_fhdnn_federated(const FhdnnConfig& model_config,
                                        const data::Dataset& train,
                                        const data::ClientIndices& parts,
                                        const data::Dataset& test,
                                        const FederatedParams& params,
                                        const channel::HdUplinkConfig& uplink);

/// Which CNN baseline architecture to instantiate.
enum class CnnArch {
  Cnn2,        ///< 2 conv + 2 fc (the paper's MNIST model)
  MiniResNet,  ///< scaled-down ResNet (the paper's CIFAR/Fashion model)
};

struct CnnParams {
  CnnArch arch = CnnArch::MiniResNet;
  std::int64_t base_width = 8;  ///< MiniResNet width
  float lr = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;
};

/// Run the FedAvg CNN baseline on the same data/partition. `uplink` may be
/// null for reliable links.
fl::TrainingHistory run_cnn_federated(const CnnParams& cnn,
                                      const data::Dataset& train,
                                      const data::ClientIndices& parts,
                                      const data::Dataset& test,
                                      const FederatedParams& params,
                                      const channel::Channel* uplink);

/// Update sizes (bytes) for communication accounting, delegated to
/// channel::hd_update_bytes so every layer reports with the same rule.
/// The one-argument overload assumes raw float32 prototypes; the
/// two-argument one accounts under a specific uplink (AGC-quantized or
/// binary payloads shrink accordingly).
std::uint64_t fhdnn_update_bytes(const FhdnnConfig& config);
std::uint64_t fhdnn_update_bytes(const FhdnnConfig& config,
                                 const channel::HdUplinkConfig& uplink);
std::uint64_t cnn_update_bytes(const CnnParams& cnn, const data::Dataset& ds);

}  // namespace fhdnn::core
