#include "core/experiment.hpp"

#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace fhdnn::core {

Distribution distribution_from_string(const std::string& s) {
  if (s == "iid") return Distribution::Iid;
  if (s == "noniid" || s == "non-iid") return Distribution::NonIid;
  throw Error("unknown distribution '" + s + "' (want iid|noniid)");
}

std::string to_string(Distribution d) {
  return d == Distribution::Iid ? "iid" : "non-iid";
}

ExperimentData make_experiment_data(const std::string& dataset_name,
                                    std::int64_t total_examples,
                                    std::size_t n_clients, Distribution dist,
                                    std::uint64_t seed) {
  Rng rng(seed);
  Rng data_rng = rng.fork("data-" + dataset_name);
  data::Dataset full;
  if (dataset_name == "mnist") {
    full = data::synthetic_mnist(total_examples, data_rng);
  } else if (dataset_name == "fashion") {
    full = data::synthetic_fashion(total_examples, data_rng);
  } else if (dataset_name == "cifar") {
    full = data::synthetic_cifar(total_examples, data_rng);
  } else {
    throw Error("unknown dataset '" + dataset_name +
                "' (want mnist|fashion|cifar)");
  }
  Rng split_rng = rng.fork("split");
  auto split = data::train_test_split(full, 0.1, split_rng);
  Rng part_rng = rng.fork("partition");
  data::ClientIndices parts =
      dist == Distribution::Iid
          ? data::partition_iid(split.train, n_clients, part_rng)
          : data::partition_dirichlet(split.train, n_clients, 0.3, part_rng);
  return ExperimentData{std::move(split.train), std::move(split.test),
                        std::move(parts)};
}

FhdnnConfig fhdnn_config_for(const data::Dataset& ds, std::int64_t hd_dim,
                             std::int64_t feature_dim) {
  FHDNN_CHECK(ds.is_image(), "fhdnn_config_for expects an image dataset");
  FhdnnConfig c;
  c.in_channels = ds.x.dim(1);
  c.image_hw = ds.x.dim(2);
  c.num_classes = ds.num_classes;
  const bool rgb = c.in_channels == 3;
  c.conv_width = rgb ? 48 : 16;
  c.feature_dim = feature_dim > 0 ? feature_dim : (rgb ? 512 : 256);
  c.hd_dim = hd_dim;
  return c;
}

CnnParams cnn_params_for(const std::string& dataset_name) {
  CnnParams p;
  if (dataset_name == "mnist") {
    p.arch = CnnArch::Cnn2;
    p.lr = 0.05F;
  } else {
    p.arch = CnnArch::MiniResNet;
    p.base_width = 8;
    p.lr = 0.05F;
  }
  return p;
}

FederatedParams paper_default_params(std::size_t n_clients, int rounds,
                                     std::uint64_t seed) {
  FederatedParams p;
  p.n_clients = n_clients;
  p.client_fraction = 0.2;  // C
  p.local_epochs = 2;       // E
  p.batch_size = 10;        // B
  p.rounds = rounds;
  p.seed = seed;
  return p;
}

}  // namespace fhdnn::core
