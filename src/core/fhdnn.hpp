// FhdnnModel — the paper's primary contribution (§3.1-3.4.1), assembled.
//
//   images -> frozen CNN feature extractor (features/extractor.hpp)
//          -> random-projection HD encoder, phi(z) = sign(Phi z) (hdc/)
//          -> HD classifier over class prototypes (hdc/classifier.hpp)
//
// Everything upstream of the classifier is deterministic in the shared
// seed, so clients never exchange the extractor or Phi — only the (K x d)
// prototype matrix, which is what makes FHDnn's updates 22x smaller than
// ResNet-18's.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "features/extractor.hpp"
// core assembles full trainers and is the one layer allowed to reach up
// into channel/fl (see DESIGN.md §15 on the layering manifest).
// fhdnn-lint: allow(layer-dag)
#include "fl/fedhd.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"

namespace fhdnn::core {

struct FhdnnConfig {
  std::int64_t in_channels = 1;
  std::int64_t image_hw = 28;
  std::int64_t num_classes = 10;
  std::int64_t feature_dim = 512;  ///< n, the extractor output size
  std::int64_t hd_dim = 10'000;    ///< d
  std::int64_t conv_width = 16;    ///< extractor trunk width (first conv)
  std::uint64_t shared_seed = 0xF00D;  ///< "pretraining" seed shared by all parties
};

class FhdnnModel {
 public:
  explicit FhdnnModel(FhdnnConfig config);

  const FhdnnConfig& config() const { return config_; }
  const features::FrozenFeatureExtractor& extractor() const { return extractor_; }
  features::FrozenFeatureExtractor& extractor() { return extractor_; }
  const hdc::RandomProjectionEncoder& encoder() const { return encoder_; }
  hdc::HdClassifier& classifier() { return classifier_; }
  const hdc::HdClassifier& classifier() const { return classifier_; }

  /// Calibrate the extractor's output standardization once (idempotent
  /// callers should check extractor().standardized()).
  void calibrate(const Tensor& images);

  /// images (N,C,H,W) -> hypervectors (N,d).
  Tensor encode_images(const Tensor& images) const;

  /// Encode a whole dataset into FL-ready hypervector data.
  fl::HdClientData encode_dataset(const data::Dataset& ds) const;

  /// Local training exactly as §3.4.1: one-shot bundle (if the classifier
  /// is empty) + `epochs` refinement passes. Returns final epoch's
  /// misprediction count.
  std::int64_t train_local(const fl::HdClientData& data, int epochs);

  /// Predicted class per image.
  std::vector<std::int64_t> predict(const Tensor& images) const;

  /// Accuracy on a raw-image dataset.
  double accuracy(const data::Dataset& ds) const;

  /// Transmissible model size in bytes (raw float32 prototypes), computed
  /// with the shared channel::hd_update_bytes accounting rule.
  std::uint64_t update_bytes() const;

 private:
  FhdnnConfig config_;
  features::FrozenFeatureExtractor extractor_;
  hdc::RandomProjectionEncoder encoder_;
  hdc::HdClassifier classifier_;
};

}  // namespace fhdnn::core
