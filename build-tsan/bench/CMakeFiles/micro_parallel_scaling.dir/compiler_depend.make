# Empty compiler generated dependencies file for micro_parallel_scaling.
# This may be replaced when dependencies are built.
