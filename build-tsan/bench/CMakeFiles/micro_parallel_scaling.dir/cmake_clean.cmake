file(REMOVE_RECURSE
  "CMakeFiles/micro_parallel_scaling.dir/micro_parallel_scaling.cpp.o"
  "CMakeFiles/micro_parallel_scaling.dir/micro_parallel_scaling.cpp.o.d"
  "micro_parallel_scaling"
  "micro_parallel_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parallel_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
