# Empty compiler generated dependencies file for micro_hdc_ops.
# This may be replaced when dependencies are built.
