file(REMOVE_RECURSE
  "CMakeFiles/micro_hdc_ops.dir/micro_hdc_ops.cpp.o"
  "CMakeFiles/micro_hdc_ops.dir/micro_hdc_ops.cpp.o.d"
  "micro_hdc_ops"
  "micro_hdc_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hdc_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
