file(REMOVE_RECURSE
  "CMakeFiles/fig5_partial_info.dir/fig5_partial_info.cpp.o"
  "CMakeFiles/fig5_partial_info.dir/fig5_partial_info.cpp.o.d"
  "fig5_partial_info"
  "fig5_partial_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_partial_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
