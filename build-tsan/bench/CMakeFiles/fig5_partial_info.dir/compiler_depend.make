# Empty compiler generated dependencies file for fig5_partial_info.
# This may be replaced when dependencies are built.
