file(REMOVE_RECURSE
  "CMakeFiles/micro_nn_ops.dir/micro_nn_ops.cpp.o"
  "CMakeFiles/micro_nn_ops.dir/micro_nn_ops.cpp.o.d"
  "micro_nn_ops"
  "micro_nn_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_nn_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
