# Empty compiler generated dependencies file for micro_nn_ops.
# This may be replaced when dependencies are built.
