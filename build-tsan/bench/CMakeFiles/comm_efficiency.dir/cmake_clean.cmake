file(REMOVE_RECURSE
  "CMakeFiles/comm_efficiency.dir/comm_efficiency.cpp.o"
  "CMakeFiles/comm_efficiency.dir/comm_efficiency.cpp.o.d"
  "comm_efficiency"
  "comm_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
