# Empty dependencies file for comm_efficiency.
# This may be replaced when dependencies are built.
