# Empty compiler generated dependencies file for ablation_quantizer_snr.
# This may be replaced when dependencies are built.
