file(REMOVE_RECURSE
  "CMakeFiles/ablation_quantizer_snr.dir/ablation_quantizer_snr.cpp.o"
  "CMakeFiles/ablation_quantizer_snr.dir/ablation_quantizer_snr.cpp.o.d"
  "ablation_quantizer_snr"
  "ablation_quantizer_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quantizer_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
