# Empty compiler generated dependencies file for fig4_noise_reconstruction.
# This may be replaced when dependencies are built.
