file(REMOVE_RECURSE
  "CMakeFiles/fig4_noise_reconstruction.dir/fig4_noise_reconstruction.cpp.o"
  "CMakeFiles/fig4_noise_reconstruction.dir/fig4_noise_reconstruction.cpp.o.d"
  "fig4_noise_reconstruction"
  "fig4_noise_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_noise_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
