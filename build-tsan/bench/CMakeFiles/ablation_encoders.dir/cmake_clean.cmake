file(REMOVE_RECURSE
  "CMakeFiles/ablation_encoders.dir/ablation_encoders.cpp.o"
  "CMakeFiles/ablation_encoders.dir/ablation_encoders.cpp.o.d"
  "ablation_encoders"
  "ablation_encoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_encoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
