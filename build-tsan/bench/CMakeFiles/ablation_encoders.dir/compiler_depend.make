# Empty compiler generated dependencies file for ablation_encoders.
# This may be replaced when dependencies are built.
