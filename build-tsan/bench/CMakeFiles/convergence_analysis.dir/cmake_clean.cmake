file(REMOVE_RECURSE
  "CMakeFiles/convergence_analysis.dir/convergence_analysis.cpp.o"
  "CMakeFiles/convergence_analysis.dir/convergence_analysis.cpp.o.d"
  "convergence_analysis"
  "convergence_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
