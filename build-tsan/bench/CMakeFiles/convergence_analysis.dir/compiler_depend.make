# Empty compiler generated dependencies file for convergence_analysis.
# This may be replaced when dependencies are built.
