# Empty compiler generated dependencies file for fig7_accuracy_curves.
# This may be replaced when dependencies are built.
