file(REMOVE_RECURSE
  "CMakeFiles/fig7_accuracy_curves.dir/fig7_accuracy_curves.cpp.o"
  "CMakeFiles/fig7_accuracy_curves.dir/fig7_accuracy_curves.cpp.o.d"
  "fig7_accuracy_curves"
  "fig7_accuracy_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_accuracy_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
