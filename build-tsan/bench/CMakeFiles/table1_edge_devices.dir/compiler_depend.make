# Empty compiler generated dependencies file for table1_edge_devices.
# This may be replaced when dependencies are built.
