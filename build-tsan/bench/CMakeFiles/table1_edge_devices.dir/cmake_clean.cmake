file(REMOVE_RECURSE
  "CMakeFiles/table1_edge_devices.dir/table1_edge_devices.cpp.o"
  "CMakeFiles/table1_edge_devices.dir/table1_edge_devices.cpp.o.d"
  "table1_edge_devices"
  "table1_edge_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_edge_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
