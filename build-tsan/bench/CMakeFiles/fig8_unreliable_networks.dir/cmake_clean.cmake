file(REMOVE_RECURSE
  "CMakeFiles/fig8_unreliable_networks.dir/fig8_unreliable_networks.cpp.o"
  "CMakeFiles/fig8_unreliable_networks.dir/fig8_unreliable_networks.cpp.o.d"
  "fig8_unreliable_networks"
  "fig8_unreliable_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_unreliable_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
