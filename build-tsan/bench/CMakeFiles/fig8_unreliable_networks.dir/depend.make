# Empty dependencies file for fig8_unreliable_networks.
# This may be replaced when dependencies are built.
