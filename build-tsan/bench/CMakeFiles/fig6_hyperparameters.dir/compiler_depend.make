# Empty compiler generated dependencies file for fig6_hyperparameters.
# This may be replaced when dependencies are built.
