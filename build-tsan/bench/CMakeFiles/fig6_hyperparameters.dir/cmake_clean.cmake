file(REMOVE_RECURSE
  "CMakeFiles/fig6_hyperparameters.dir/fig6_hyperparameters.cpp.o"
  "CMakeFiles/fig6_hyperparameters.dir/fig6_hyperparameters.cpp.o.d"
  "fig6_hyperparameters"
  "fig6_hyperparameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hyperparameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
