file(REMOVE_RECURSE
  "CMakeFiles/fhdnn_fl.dir/convergence.cpp.o"
  "CMakeFiles/fhdnn_fl.dir/convergence.cpp.o.d"
  "CMakeFiles/fhdnn_fl.dir/fedavg.cpp.o"
  "CMakeFiles/fhdnn_fl.dir/fedavg.cpp.o.d"
  "CMakeFiles/fhdnn_fl.dir/fedhd.cpp.o"
  "CMakeFiles/fhdnn_fl.dir/fedhd.cpp.o.d"
  "CMakeFiles/fhdnn_fl.dir/history.cpp.o"
  "CMakeFiles/fhdnn_fl.dir/history.cpp.o.d"
  "CMakeFiles/fhdnn_fl.dir/sampler.cpp.o"
  "CMakeFiles/fhdnn_fl.dir/sampler.cpp.o.d"
  "CMakeFiles/fhdnn_fl.dir/timeline.cpp.o"
  "CMakeFiles/fhdnn_fl.dir/timeline.cpp.o.d"
  "libfhdnn_fl.a"
  "libfhdnn_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhdnn_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
