file(REMOVE_RECURSE
  "libfhdnn_fl.a"
)
