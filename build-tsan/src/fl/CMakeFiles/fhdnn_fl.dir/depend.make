# Empty dependencies file for fhdnn_fl.
# This may be replaced when dependencies are built.
