
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdc/binary_model.cpp" "src/hdc/CMakeFiles/fhdnn_hdc.dir/binary_model.cpp.o" "gcc" "src/hdc/CMakeFiles/fhdnn_hdc.dir/binary_model.cpp.o.d"
  "/root/repo/src/hdc/classifier.cpp" "src/hdc/CMakeFiles/fhdnn_hdc.dir/classifier.cpp.o" "gcc" "src/hdc/CMakeFiles/fhdnn_hdc.dir/classifier.cpp.o.d"
  "/root/repo/src/hdc/encoder.cpp" "src/hdc/CMakeFiles/fhdnn_hdc.dir/encoder.cpp.o" "gcc" "src/hdc/CMakeFiles/fhdnn_hdc.dir/encoder.cpp.o.d"
  "/root/repo/src/hdc/id_level_encoder.cpp" "src/hdc/CMakeFiles/fhdnn_hdc.dir/id_level_encoder.cpp.o" "gcc" "src/hdc/CMakeFiles/fhdnn_hdc.dir/id_level_encoder.cpp.o.d"
  "/root/repo/src/hdc/ops.cpp" "src/hdc/CMakeFiles/fhdnn_hdc.dir/ops.cpp.o" "gcc" "src/hdc/CMakeFiles/fhdnn_hdc.dir/ops.cpp.o.d"
  "/root/repo/src/hdc/quantizer.cpp" "src/hdc/CMakeFiles/fhdnn_hdc.dir/quantizer.cpp.o" "gcc" "src/hdc/CMakeFiles/fhdnn_hdc.dir/quantizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tensor/CMakeFiles/fhdnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/fhdnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
