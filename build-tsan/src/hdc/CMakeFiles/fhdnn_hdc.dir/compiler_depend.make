# Empty compiler generated dependencies file for fhdnn_hdc.
# This may be replaced when dependencies are built.
