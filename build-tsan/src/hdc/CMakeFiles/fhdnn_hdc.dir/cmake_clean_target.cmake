file(REMOVE_RECURSE
  "libfhdnn_hdc.a"
)
