file(REMOVE_RECURSE
  "CMakeFiles/fhdnn_hdc.dir/binary_model.cpp.o"
  "CMakeFiles/fhdnn_hdc.dir/binary_model.cpp.o.d"
  "CMakeFiles/fhdnn_hdc.dir/classifier.cpp.o"
  "CMakeFiles/fhdnn_hdc.dir/classifier.cpp.o.d"
  "CMakeFiles/fhdnn_hdc.dir/encoder.cpp.o"
  "CMakeFiles/fhdnn_hdc.dir/encoder.cpp.o.d"
  "CMakeFiles/fhdnn_hdc.dir/id_level_encoder.cpp.o"
  "CMakeFiles/fhdnn_hdc.dir/id_level_encoder.cpp.o.d"
  "CMakeFiles/fhdnn_hdc.dir/ops.cpp.o"
  "CMakeFiles/fhdnn_hdc.dir/ops.cpp.o.d"
  "CMakeFiles/fhdnn_hdc.dir/quantizer.cpp.o"
  "CMakeFiles/fhdnn_hdc.dir/quantizer.cpp.o.d"
  "libfhdnn_hdc.a"
  "libfhdnn_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhdnn_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
