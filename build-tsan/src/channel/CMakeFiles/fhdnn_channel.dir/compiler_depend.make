# Empty compiler generated dependencies file for fhdnn_channel.
# This may be replaced when dependencies are built.
