
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/bits.cpp" "src/channel/CMakeFiles/fhdnn_channel.dir/bits.cpp.o" "gcc" "src/channel/CMakeFiles/fhdnn_channel.dir/bits.cpp.o.d"
  "/root/repo/src/channel/channel.cpp" "src/channel/CMakeFiles/fhdnn_channel.dir/channel.cpp.o" "gcc" "src/channel/CMakeFiles/fhdnn_channel.dir/channel.cpp.o.d"
  "/root/repo/src/channel/fading.cpp" "src/channel/CMakeFiles/fhdnn_channel.dir/fading.cpp.o" "gcc" "src/channel/CMakeFiles/fhdnn_channel.dir/fading.cpp.o.d"
  "/root/repo/src/channel/hd_uplink.cpp" "src/channel/CMakeFiles/fhdnn_channel.dir/hd_uplink.cpp.o" "gcc" "src/channel/CMakeFiles/fhdnn_channel.dir/hd_uplink.cpp.o.d"
  "/root/repo/src/channel/lte.cpp" "src/channel/CMakeFiles/fhdnn_channel.dir/lte.cpp.o" "gcc" "src/channel/CMakeFiles/fhdnn_channel.dir/lte.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/hdc/CMakeFiles/fhdnn_hdc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/fhdnn_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/fhdnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
