file(REMOVE_RECURSE
  "libfhdnn_channel.a"
)
