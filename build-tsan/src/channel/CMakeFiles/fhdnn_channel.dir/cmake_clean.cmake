file(REMOVE_RECURSE
  "CMakeFiles/fhdnn_channel.dir/bits.cpp.o"
  "CMakeFiles/fhdnn_channel.dir/bits.cpp.o.d"
  "CMakeFiles/fhdnn_channel.dir/channel.cpp.o"
  "CMakeFiles/fhdnn_channel.dir/channel.cpp.o.d"
  "CMakeFiles/fhdnn_channel.dir/fading.cpp.o"
  "CMakeFiles/fhdnn_channel.dir/fading.cpp.o.d"
  "CMakeFiles/fhdnn_channel.dir/hd_uplink.cpp.o"
  "CMakeFiles/fhdnn_channel.dir/hd_uplink.cpp.o.d"
  "CMakeFiles/fhdnn_channel.dir/lte.cpp.o"
  "CMakeFiles/fhdnn_channel.dir/lte.cpp.o.d"
  "libfhdnn_channel.a"
  "libfhdnn_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhdnn_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
