# Empty compiler generated dependencies file for fhdnn_util.
# This may be replaced when dependencies are built.
