file(REMOVE_RECURSE
  "CMakeFiles/fhdnn_util.dir/cli.cpp.o"
  "CMakeFiles/fhdnn_util.dir/cli.cpp.o.d"
  "CMakeFiles/fhdnn_util.dir/csv.cpp.o"
  "CMakeFiles/fhdnn_util.dir/csv.cpp.o.d"
  "CMakeFiles/fhdnn_util.dir/log.cpp.o"
  "CMakeFiles/fhdnn_util.dir/log.cpp.o.d"
  "CMakeFiles/fhdnn_util.dir/parallel.cpp.o"
  "CMakeFiles/fhdnn_util.dir/parallel.cpp.o.d"
  "CMakeFiles/fhdnn_util.dir/rng.cpp.o"
  "CMakeFiles/fhdnn_util.dir/rng.cpp.o.d"
  "CMakeFiles/fhdnn_util.dir/stats.cpp.o"
  "CMakeFiles/fhdnn_util.dir/stats.cpp.o.d"
  "CMakeFiles/fhdnn_util.dir/table.cpp.o"
  "CMakeFiles/fhdnn_util.dir/table.cpp.o.d"
  "libfhdnn_util.a"
  "libfhdnn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhdnn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
