
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cli.cpp" "src/util/CMakeFiles/fhdnn_util.dir/cli.cpp.o" "gcc" "src/util/CMakeFiles/fhdnn_util.dir/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/util/CMakeFiles/fhdnn_util.dir/csv.cpp.o" "gcc" "src/util/CMakeFiles/fhdnn_util.dir/csv.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/fhdnn_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/fhdnn_util.dir/log.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "src/util/CMakeFiles/fhdnn_util.dir/parallel.cpp.o" "gcc" "src/util/CMakeFiles/fhdnn_util.dir/parallel.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/fhdnn_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/fhdnn_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/fhdnn_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/fhdnn_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/fhdnn_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/fhdnn_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
