file(REMOVE_RECURSE
  "libfhdnn_util.a"
)
