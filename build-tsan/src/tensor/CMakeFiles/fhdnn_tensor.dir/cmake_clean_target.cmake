file(REMOVE_RECURSE
  "libfhdnn_tensor.a"
)
