file(REMOVE_RECURSE
  "CMakeFiles/fhdnn_tensor.dir/conv.cpp.o"
  "CMakeFiles/fhdnn_tensor.dir/conv.cpp.o.d"
  "CMakeFiles/fhdnn_tensor.dir/io.cpp.o"
  "CMakeFiles/fhdnn_tensor.dir/io.cpp.o.d"
  "CMakeFiles/fhdnn_tensor.dir/ops.cpp.o"
  "CMakeFiles/fhdnn_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/fhdnn_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fhdnn_tensor.dir/tensor.cpp.o.d"
  "libfhdnn_tensor.a"
  "libfhdnn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhdnn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
