# Empty dependencies file for fhdnn_tensor.
# This may be replaced when dependencies are built.
