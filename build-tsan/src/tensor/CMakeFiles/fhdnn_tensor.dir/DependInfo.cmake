
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/conv.cpp" "src/tensor/CMakeFiles/fhdnn_tensor.dir/conv.cpp.o" "gcc" "src/tensor/CMakeFiles/fhdnn_tensor.dir/conv.cpp.o.d"
  "/root/repo/src/tensor/io.cpp" "src/tensor/CMakeFiles/fhdnn_tensor.dir/io.cpp.o" "gcc" "src/tensor/CMakeFiles/fhdnn_tensor.dir/io.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/tensor/CMakeFiles/fhdnn_tensor.dir/ops.cpp.o" "gcc" "src/tensor/CMakeFiles/fhdnn_tensor.dir/ops.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/tensor/CMakeFiles/fhdnn_tensor.dir/tensor.cpp.o" "gcc" "src/tensor/CMakeFiles/fhdnn_tensor.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/fhdnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
