# Empty dependencies file for fhdnn_features.
# This may be replaced when dependencies are built.
