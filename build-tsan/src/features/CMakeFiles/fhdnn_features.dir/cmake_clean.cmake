file(REMOVE_RECURSE
  "CMakeFiles/fhdnn_features.dir/extractor.cpp.o"
  "CMakeFiles/fhdnn_features.dir/extractor.cpp.o.d"
  "libfhdnn_features.a"
  "libfhdnn_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhdnn_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
