file(REMOVE_RECURSE
  "libfhdnn_features.a"
)
