file(REMOVE_RECURSE
  "libfhdnn_perf.a"
)
