file(REMOVE_RECURSE
  "CMakeFiles/fhdnn_perf.dir/device_model.cpp.o"
  "CMakeFiles/fhdnn_perf.dir/device_model.cpp.o.d"
  "CMakeFiles/fhdnn_perf.dir/model_macs.cpp.o"
  "CMakeFiles/fhdnn_perf.dir/model_macs.cpp.o.d"
  "libfhdnn_perf.a"
  "libfhdnn_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhdnn_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
