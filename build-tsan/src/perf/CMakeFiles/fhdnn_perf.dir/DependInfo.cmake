
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/device_model.cpp" "src/perf/CMakeFiles/fhdnn_perf.dir/device_model.cpp.o" "gcc" "src/perf/CMakeFiles/fhdnn_perf.dir/device_model.cpp.o.d"
  "/root/repo/src/perf/model_macs.cpp" "src/perf/CMakeFiles/fhdnn_perf.dir/model_macs.cpp.o" "gcc" "src/perf/CMakeFiles/fhdnn_perf.dir/model_macs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/fhdnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
