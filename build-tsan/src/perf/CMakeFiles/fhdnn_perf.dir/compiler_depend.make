# Empty compiler generated dependencies file for fhdnn_perf.
# This may be replaced when dependencies are built.
