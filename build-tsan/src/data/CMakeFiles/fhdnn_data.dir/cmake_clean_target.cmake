file(REMOVE_RECURSE
  "libfhdnn_data.a"
)
