file(REMOVE_RECURSE
  "CMakeFiles/fhdnn_data.dir/dataset.cpp.o"
  "CMakeFiles/fhdnn_data.dir/dataset.cpp.o.d"
  "CMakeFiles/fhdnn_data.dir/partition.cpp.o"
  "CMakeFiles/fhdnn_data.dir/partition.cpp.o.d"
  "CMakeFiles/fhdnn_data.dir/synthetic.cpp.o"
  "CMakeFiles/fhdnn_data.dir/synthetic.cpp.o.d"
  "libfhdnn_data.a"
  "libfhdnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhdnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
