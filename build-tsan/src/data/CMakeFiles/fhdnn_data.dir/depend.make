# Empty dependencies file for fhdnn_data.
# This may be replaced when dependencies are built.
