
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/fhdnn_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/fhdnn_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/data/CMakeFiles/fhdnn_data.dir/partition.cpp.o" "gcc" "src/data/CMakeFiles/fhdnn_data.dir/partition.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/data/CMakeFiles/fhdnn_data.dir/synthetic.cpp.o" "gcc" "src/data/CMakeFiles/fhdnn_data.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tensor/CMakeFiles/fhdnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/fhdnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
