# Empty compiler generated dependencies file for fhdnn_nn.
# This may be replaced when dependencies are built.
