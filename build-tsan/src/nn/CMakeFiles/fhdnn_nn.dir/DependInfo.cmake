
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/fhdnn_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/fhdnn_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/fhdnn_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/fhdnn_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/fhdnn_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/fhdnn_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/fhdnn_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/fhdnn_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/fhdnn_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/fhdnn_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/resnet.cpp" "src/nn/CMakeFiles/fhdnn_nn.dir/resnet.cpp.o" "gcc" "src/nn/CMakeFiles/fhdnn_nn.dir/resnet.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/fhdnn_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/fhdnn_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tensor/CMakeFiles/fhdnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/fhdnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
