file(REMOVE_RECURSE
  "libfhdnn_nn.a"
)
