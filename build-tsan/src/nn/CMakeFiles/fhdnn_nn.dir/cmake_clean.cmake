file(REMOVE_RECURSE
  "CMakeFiles/fhdnn_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/fhdnn_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/fhdnn_nn.dir/layers.cpp.o"
  "CMakeFiles/fhdnn_nn.dir/layers.cpp.o.d"
  "CMakeFiles/fhdnn_nn.dir/loss.cpp.o"
  "CMakeFiles/fhdnn_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fhdnn_nn.dir/module.cpp.o"
  "CMakeFiles/fhdnn_nn.dir/module.cpp.o.d"
  "CMakeFiles/fhdnn_nn.dir/optimizer.cpp.o"
  "CMakeFiles/fhdnn_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/fhdnn_nn.dir/resnet.cpp.o"
  "CMakeFiles/fhdnn_nn.dir/resnet.cpp.o.d"
  "CMakeFiles/fhdnn_nn.dir/serialize.cpp.o"
  "CMakeFiles/fhdnn_nn.dir/serialize.cpp.o.d"
  "libfhdnn_nn.a"
  "libfhdnn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhdnn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
