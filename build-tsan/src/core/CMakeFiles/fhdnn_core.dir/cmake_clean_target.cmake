file(REMOVE_RECURSE
  "libfhdnn_core.a"
)
