# Empty dependencies file for fhdnn_core.
# This may be replaced when dependencies are built.
