file(REMOVE_RECURSE
  "CMakeFiles/fhdnn_core.dir/experiment.cpp.o"
  "CMakeFiles/fhdnn_core.dir/experiment.cpp.o.d"
  "CMakeFiles/fhdnn_core.dir/fhdnn.cpp.o"
  "CMakeFiles/fhdnn_core.dir/fhdnn.cpp.o.d"
  "CMakeFiles/fhdnn_core.dir/pipeline.cpp.o"
  "CMakeFiles/fhdnn_core.dir/pipeline.cpp.o.d"
  "libfhdnn_core.a"
  "libfhdnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhdnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
