file(REMOVE_RECURSE
  "CMakeFiles/test_channel.dir/test_channel.cpp.o"
  "CMakeFiles/test_channel.dir/test_channel.cpp.o.d"
  "test_channel"
  "test_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
