# Empty compiler generated dependencies file for test_channel.
# This may be replaced when dependencies are built.
