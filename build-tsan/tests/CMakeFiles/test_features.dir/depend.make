# Empty dependencies file for test_features.
# This may be replaced when dependencies are built.
