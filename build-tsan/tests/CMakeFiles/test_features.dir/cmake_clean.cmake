file(REMOVE_RECURSE
  "CMakeFiles/test_features.dir/test_features.cpp.o"
  "CMakeFiles/test_features.dir/test_features.cpp.o.d"
  "test_features"
  "test_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
