file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/test_nn.cpp.o"
  "CMakeFiles/test_nn.dir/test_nn.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
