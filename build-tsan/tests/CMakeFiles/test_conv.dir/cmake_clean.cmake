file(REMOVE_RECURSE
  "CMakeFiles/test_conv.dir/test_conv.cpp.o"
  "CMakeFiles/test_conv.dir/test_conv.cpp.o.d"
  "test_conv"
  "test_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
