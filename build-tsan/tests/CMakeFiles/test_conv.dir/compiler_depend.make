# Empty compiler generated dependencies file for test_conv.
# This may be replaced when dependencies are built.
