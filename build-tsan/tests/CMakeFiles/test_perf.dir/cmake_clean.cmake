file(REMOVE_RECURSE
  "CMakeFiles/test_perf.dir/test_perf.cpp.o"
  "CMakeFiles/test_perf.dir/test_perf.cpp.o.d"
  "test_perf"
  "test_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
