# Empty dependencies file for test_fl_ext.
# This may be replaced when dependencies are built.
