file(REMOVE_RECURSE
  "CMakeFiles/test_fl_ext.dir/test_fl_ext.cpp.o"
  "CMakeFiles/test_fl_ext.dir/test_fl_ext.cpp.o.d"
  "test_fl_ext"
  "test_fl_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
