# Empty dependencies file for test_hdc.
# This may be replaced when dependencies are built.
