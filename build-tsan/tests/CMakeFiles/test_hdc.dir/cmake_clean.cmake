file(REMOVE_RECURSE
  "CMakeFiles/test_hdc.dir/test_hdc.cpp.o"
  "CMakeFiles/test_hdc.dir/test_hdc.cpp.o.d"
  "test_hdc"
  "test_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
