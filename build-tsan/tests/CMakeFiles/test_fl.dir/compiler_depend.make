# Empty compiler generated dependencies file for test_fl.
# This may be replaced when dependencies are built.
