file(REMOVE_RECURSE
  "CMakeFiles/test_fl.dir/test_fl.cpp.o"
  "CMakeFiles/test_fl.dir/test_fl.cpp.o.d"
  "test_fl"
  "test_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
