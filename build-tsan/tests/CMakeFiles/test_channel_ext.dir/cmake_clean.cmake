file(REMOVE_RECURSE
  "CMakeFiles/test_channel_ext.dir/test_channel_ext.cpp.o"
  "CMakeFiles/test_channel_ext.dir/test_channel_ext.cpp.o.d"
  "test_channel_ext"
  "test_channel_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
