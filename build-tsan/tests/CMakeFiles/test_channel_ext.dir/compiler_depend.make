# Empty compiler generated dependencies file for test_channel_ext.
# This may be replaced when dependencies are built.
