# Empty compiler generated dependencies file for test_nn_training.
# This may be replaced when dependencies are built.
