file(REMOVE_RECURSE
  "CMakeFiles/test_nn_training.dir/test_nn_training.cpp.o"
  "CMakeFiles/test_nn_training.dir/test_nn_training.cpp.o.d"
  "test_nn_training"
  "test_nn_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
