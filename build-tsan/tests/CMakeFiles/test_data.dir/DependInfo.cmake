
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/test_data.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/test_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/fhdnn_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fl/CMakeFiles/fhdnn_fl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/features/CMakeFiles/fhdnn_features.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/fhdnn_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/fhdnn_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/channel/CMakeFiles/fhdnn_channel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hdc/CMakeFiles/fhdnn_hdc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/fhdnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/perf/CMakeFiles/fhdnn_perf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/fhdnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
