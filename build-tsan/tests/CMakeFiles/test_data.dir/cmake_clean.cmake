file(REMOVE_RECURSE
  "CMakeFiles/test_data.dir/test_data.cpp.o"
  "CMakeFiles/test_data.dir/test_data.cpp.o.d"
  "test_data"
  "test_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
