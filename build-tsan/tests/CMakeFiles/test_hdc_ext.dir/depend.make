# Empty dependencies file for test_hdc_ext.
# This may be replaced when dependencies are built.
