file(REMOVE_RECURSE
  "CMakeFiles/test_hdc_ext.dir/test_hdc_ext.cpp.o"
  "CMakeFiles/test_hdc_ext.dir/test_hdc_ext.cpp.o.d"
  "test_hdc_ext"
  "test_hdc_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdc_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
