file(REMOVE_RECURSE
  "CMakeFiles/edge_deployment.dir/edge_deployment.cpp.o"
  "CMakeFiles/edge_deployment.dir/edge_deployment.cpp.o.d"
  "edge_deployment"
  "edge_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
