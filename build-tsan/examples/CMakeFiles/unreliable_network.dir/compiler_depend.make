# Empty compiler generated dependencies file for unreliable_network.
# This may be replaced when dependencies are built.
