file(REMOVE_RECURSE
  "CMakeFiles/unreliable_network.dir/unreliable_network.cpp.o"
  "CMakeFiles/unreliable_network.dir/unreliable_network.cpp.o.d"
  "unreliable_network"
  "unreliable_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unreliable_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
