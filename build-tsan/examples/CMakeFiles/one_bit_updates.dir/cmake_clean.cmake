file(REMOVE_RECURSE
  "CMakeFiles/one_bit_updates.dir/one_bit_updates.cpp.o"
  "CMakeFiles/one_bit_updates.dir/one_bit_updates.cpp.o.d"
  "one_bit_updates"
  "one_bit_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_bit_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
