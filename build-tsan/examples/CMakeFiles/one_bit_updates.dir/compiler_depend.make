# Empty compiler generated dependencies file for one_bit_updates.
# This may be replaced when dependencies are built.
