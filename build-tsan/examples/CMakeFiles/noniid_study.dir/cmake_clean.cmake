file(REMOVE_RECURSE
  "CMakeFiles/noniid_study.dir/noniid_study.cpp.o"
  "CMakeFiles/noniid_study.dir/noniid_study.cpp.o.d"
  "noniid_study"
  "noniid_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noniid_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
