# Empty compiler generated dependencies file for noniid_study.
# This may be replaced when dependencies are built.
