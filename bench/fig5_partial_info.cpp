// Fig. 5 — Impact of partial information (ISOLET-like speech data).
//
// (a) After training an HD model, dimensions of a class hypervector are
//     removed at random; the retained fraction of the original dot-product
//     similarity scales *linearly* with the remaining dimensions.
// (b) Classification accuracy vs % dimensions removed: relative dot
//     products are what matters, so accuracy stays high (~90% of full) even
//     with 80% of dimensions removed.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  bench::init();
  CliFlags flags;
  flags.define_int("hd-dim", 4000, "hyperdimensional dimensionality d");
  flags.define_int("examples", 1300, "ISOLET-like dataset size");
  flags.define_double("separation", 0.5,
                      "class separation (0.5 gives the paper's ~90%-at-80%-"
                      "removed operating point)");
  flags.define_int("seed", 42, "experiment seed");
  if (!flags.parse(argc, argv)) return 0;

  const auto d = flags.get_int("hd-dim");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  print_banner(std::cout, "Fig. 5: partial information on ISOLET-like data");
  bench::print_config_line("d=" + std::to_string(d) +
                           " seed=" + std::to_string(seed));

  Rng rng(seed);
  data::IsoletSpec spec;
  spec.n = flags.get_int("examples");
  spec.separation = flags.get_double("separation");
  const auto ds = data::make_isolet_like(spec, rng);
  auto split = data::train_test_split(ds, 0.2, rng);
  Rng enc_rng = rng.fork("encoder");
  hdc::RandomProjectionEncoder enc(spec.dims, d, enc_rng);
  const Tensor h_train = enc.encode(split.train.x);
  const Tensor h_test = enc.encode(split.test.x);

  hdc::HdClassifier clf(spec.classes, d);
  clf.bundle(h_train, split.train.labels);
  for (int e = 0; e < 2; ++e) clf.refine_epoch(h_train, split.train.labels);
  const double full_acc = clf.accuracy(h_test, split.test.labels);
  std::cout << "full-model test accuracy: " << full_acc << "\n\n";

  // (a) similarity retention on one class prototype.
  // Reference dot-products of test points vs their true class, full dims.
  Rng mask_rng = rng.fork("mask");
  TextTable ta({"dims_removed_%", "similarity_retained_%", "accuracy",
                "accuracy_vs_full_%"});
  std::cout << "CSV:\n";
  CsvWriter csv(std::cout,
                {"removed_frac", "similarity_retained", "accuracy"});
  for (const double removed : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95}) {
    const auto keep_n =
        static_cast<std::size_t>(std::llround((1.0 - removed) * d));
    std::vector<bool> mask(static_cast<std::size_t>(d), false);
    const auto keep = mask_rng.sample_without_replacement(
        static_cast<std::size_t>(d), std::max<std::size_t>(1, keep_n));
    for (const auto i : keep) mask[i] = true;

    // Similarity retention: unnormalized dot product of each test vector
    // with its true class prototype, masked vs full.
    double full_dot = 0.0, masked_dot = 0.0;
    const Tensor& protos = clf.prototypes();
    for (std::int64_t i = 0; i < h_test.dim(0); ++i) {
      const auto y = split.test.labels[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < d; ++j) {
        const double term =
            static_cast<double>(h_test(i, j)) * protos(y, j);
        full_dot += term;
        if (mask[static_cast<std::size_t>(j)]) masked_dot += term;
      }
    }
    const double retained = full_dot != 0.0 ? masked_dot / full_dot : 0.0;

    // (b) masked classification accuracy.
    const Tensor sim = clf.masked_similarities(h_test, mask);
    std::size_t correct = 0;
    for (std::int64_t i = 0; i < sim.dim(0); ++i) {
      std::int64_t best = 0;
      for (std::int64_t k = 1; k < spec.classes; ++k) {
        if (sim(i, k) > sim(i, best)) best = k;
      }
      correct += (best == split.test.labels[static_cast<std::size_t>(i)]);
    }
    const double acc =
        static_cast<double>(correct) / static_cast<double>(sim.dim(0));

    ta.add_row({TextTable::cell(removed * 100.0),
                TextTable::cell(retained * 100.0), TextTable::cell(acc),
                TextTable::cell(100.0 * acc / full_acc)});
    csv.add(removed).add(retained).add(acc).end_row();
  }
  std::cout << "\n";
  ta.print(std::cout);
  std::cout << "\nPaper shape check: retention ~ linear in kept dims; "
               "accuracy >= ~90% of full even at 80% removed.\n";
  return 0;
}
