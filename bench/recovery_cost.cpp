// Cost of crash-consistent checkpointing at fleet scale (DESIGN.md §13).
//
// For each registered-fleet size (10k / 100k / 1M, capped by
// --max-registered so CI can run the small points only), drives the
// discrete-event engine with a synthetic learner and measures:
//   * boundary snapshot: bytes on disk and write latency of a checkpoint
//     taken between rounds (engine at rest — no pending cohort state);
//   * boundary resume: latency of restoring that snapshot into a fresh
//     engine;
//   * mid-round snapshot: bytes and write/restore latency of a checkpoint
//     taken between two events of a timed round, when the accepted
//     updates of the cohort are still buffered in the protocol adapter.
// The headline property the numbers demonstrate: snapshot size scales
// with the SAMPLED cohort (times the update dimensionality), not with the
// registered fleet — the sparse population and sampler are pure functions
// of (seed, config) and are covered by the config fingerprint, so a
// million-client fleet checkpoints in the same bytes as a 10k one.
//
// Emits BENCH_recovery.json for CI.
//
// Usage: recovery_cost [--max-registered=N] [--sampled=N] [--rounds=N]
//                      [--dim=N] [--threads=N] [--dir=PATH] [--json=PATH]
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "channel/transport.hpp"
#include "fl/engine.hpp"
#include "fl/faults.hpp"
#include "tensor/tensor.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using fhdnn::Rng;
using fhdnn::Shape;
using fhdnn::Tensor;

/// Synthetic learner: each client's update is a pure function of its rng
/// fork — no per-client state, so the fleet size is bounded only by the
/// population bitmask, exactly like bench/scale_million_clients.cpp.
class SyntheticLearner final : public fhdnn::fl::LocalLearner<Tensor> {
 public:
  explicit SyntheticLearner(std::int64_t dim) : dim_(dim) {}

  TrainResult train(std::size_t client, Rng& client_rng) override {
    TrainResult r;
    r.update = Tensor(Shape{dim_});
    auto out = r.update.data();
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double anchor = ((client + i) % 7 < 3) ? 1.0 : -1.0;
      out[i] = static_cast<float>(anchor + client_rng.uniform(-0.25, 0.25));
    }
    r.loss = 0.5;
    return r;
  }

  double evaluate() override { return 0.0; }

 private:
  std::int64_t dim_;
};

/// Binary-HD uplink accounting; payload passes through unchanged.
class BitTransport final : public fhdnn::channel::Transport<Tensor> {
 public:
  explicit BitTransport(std::int64_t dim) : dim_(dim) {}

  fhdnn::channel::TransportStats transmit(Tensor& /*update*/,
                                          std::size_t /*client*/,
                                          Rng& /*client_rng*/,
                                          const Rng& /*round_rng*/)
      const override {
    fhdnn::channel::TransportStats s;
    s.payload_scalars = static_cast<std::uint64_t>(dim_);
    s.payload_bytes = static_cast<std::uint64_t>((dim_ + 7) / 8);
    s.bits_on_air = static_cast<std::uint64_t>(dim_);
    return s;
  }

  std::uint64_t update_bytes(std::uint64_t scalars) const override {
    return (scalars + 7) / 8;
  }

  std::string name() const override { return "binary-hd"; }

 private:
  std::int64_t dim_;
};

/// Plain running mean; the aggregator has no cross-event state (the engine
/// reduces after the event loop), so the default no-op snapshot hooks are
/// the correct implementation here.
class MeanAggregator final : public fhdnn::fl::Aggregator<Tensor> {
 public:
  explicit MeanAggregator(std::int64_t dim) : dim_(dim) {}

  void begin_round() override {
    aggregate_ = Tensor(Shape{dim_});
    weight_total_ = 0.0;
  }

  void accumulate(std::size_t client, Tensor&& update) override {
    accumulate_weighted(client, std::move(update), 1.0);
  }

  void accumulate_weighted(std::size_t /*client*/, Tensor&& update,
                           double weight) override {
    aggregate_.axpy(static_cast<float>(weight), update);
    weight_total_ += weight;
  }

  void commit(std::size_t delivered) override {
    commit_weighted(delivered, static_cast<double>(delivered));
  }

  void commit_weighted(std::size_t /*n_updates*/,
                       double total_weight) override {
    if (total_weight > 0.0) {
      aggregate_.scale(1.0F / static_cast<float>(total_weight));
    }
  }

 private:
  std::int64_t dim_;
  Tensor aggregate_;
  double weight_total_ = 0.0;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t file_bytes(const std::string& path) {
  struct stat st{};
  return stat(path.c_str(), &st) == 0 ? static_cast<std::uint64_t>(st.st_size)
                                      : 0;
}

struct CaseResult {
  std::size_t registered = 0;
  std::size_t sampled = 0;
  std::uint64_t events_round1 = 0;
  std::uint64_t boundary_bytes = 0;
  double boundary_write_ms = 0.0;
  double boundary_resume_ms = 0.0;
  std::uint64_t midround_bytes = 0;
  double midround_write_ms = 0.0;
  double midround_resume_ms = 0.0;
};

fhdnn::fl::EngineConfig base_config(std::size_t registered,
                                    std::size_t sampled, int rounds,
                                    std::int64_t dim) {
  fhdnn::fl::EngineConfig cfg;
  cfg.n_clients = 0;
  cfg.client_fraction =
      static_cast<double>(sampled) / static_cast<double>(registered);
  cfg.rounds = rounds;
  cfg.eval_every = rounds;
  cfg.seed = 23;
  cfg.name = "recovery";
  cfg.population.n_registered = registered;
  cfg.population.mean_availability = 0.8;
  cfg.population.straggler_fraction = 0.1;
  cfg.population.straggler_slowdown = 4.0;
  cfg.population.compute_spread = 0.5;
  cfg.population.link_spread_max = 2.0;
  cfg.deadline.enabled = true;
  cfg.deadline.timeline.update_bits = static_cast<std::uint64_t>(dim);
  cfg.deadline.timeline.fhdnn = true;
  cfg.deadline.timeline.compute_jitter = 0.1;
  cfg.deadline.deadline_factor = 4.0;
  return cfg;
}

CaseResult run_case(std::size_t registered, std::size_t sampled, int rounds,
                    std::int64_t dim, const std::string& dir) {
  CaseResult res;
  res.registered = registered;
  res.sampled = sampled;
  const std::string boundary_path =
      dir + "/ckpt_boundary_" + std::to_string(registered) + ".snap";
  const std::string mid_path =
      dir + "/ckpt_mid_" + std::to_string(registered) + ".snap";
  const auto cfg = base_config(registered, sampled, rounds, dim);

  // Golden run: full rounds, then a boundary snapshot timed in isolation.
  {
    SyntheticLearner learner(dim);
    BitTransport transport(dim);
    MeanAggregator aggregator(dim);
    fhdnn::fl::ProtocolAdapter<Tensor> adapter(learner, transport, aggregator);
    fhdnn::fl::RoundEngine engine(cfg, adapter);
    const auto history = engine.run();
    res.events_round1 = history.rounds().front().events;
    const auto t0 = std::chrono::steady_clock::now();
    engine.checkpoint(boundary_path);
    res.boundary_write_ms = ms_since(t0);
    res.boundary_bytes = file_bytes(boundary_path);
  }

  // Boundary resume into a fresh engine.
  {
    SyntheticLearner learner(dim);
    BitTransport transport(dim);
    MeanAggregator aggregator(dim);
    fhdnn::fl::ProtocolAdapter<Tensor> adapter(learner, transport, aggregator);
    fhdnn::fl::RoundEngine engine(cfg, adapter);
    const auto t0 = std::chrono::steady_clock::now();
    engine.resume(boundary_path);
    res.boundary_resume_ms = ms_since(t0);
  }

  // Mid-round: kill the engine halfway through round 1's event stream,
  // right after the automatic checkpoint at the same boundary commits.
  const std::uint64_t kill_at = std::max<std::uint64_t>(res.events_round1 / 2,
                                                        1);
  {
    auto crash_cfg = cfg;
    crash_cfg.checkpoint.path = mid_path;
    crash_cfg.checkpoint.every_n_events = kill_at;
    crash_cfg.crash.enabled = true;
    crash_cfg.crash.at_event = kill_at;
    SyntheticLearner learner(dim);
    BitTransport transport(dim);
    MeanAggregator aggregator(dim);
    fhdnn::fl::ProtocolAdapter<Tensor> adapter(learner, transport, aggregator);
    fhdnn::fl::RoundEngine engine(crash_cfg, adapter);
    bool crashed = false;
    try {
      engine.run();
    } catch (const fhdnn::fl::AggregatorCrash&) {
      crashed = true;
    }
    if (!crashed) std::cout << "warning: crash plan did not fire\n";
    res.midround_bytes = file_bytes(mid_path);
  }

  // Mid-round resume + a mid-round re-checkpoint timed in isolation, then
  // the run is driven to completion to exercise the continue path.
  {
    SyntheticLearner learner(dim);
    BitTransport transport(dim);
    MeanAggregator aggregator(dim);
    fhdnn::fl::ProtocolAdapter<Tensor> adapter(learner, transport, aggregator);
    fhdnn::fl::RoundEngine engine(cfg, adapter);
    auto t0 = std::chrono::steady_clock::now();
    engine.resume(mid_path);
    res.midround_resume_ms = ms_since(t0);
    t0 = std::chrono::steady_clock::now();
    engine.checkpoint(mid_path + ".re");
    res.midround_write_ms = ms_since(t0);
    engine.run();
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  fhdnn::bench::init();
  fhdnn::CliFlags flags;
  flags.define_int("max-registered", 1'000'000,
                   "largest fleet point to run (10k/100k/1M are skipped "
                   "when above this)");
  flags.define_int("sampled", 1'000, "clients sampled per round");
  flags.define_int("rounds", 2, "federated rounds per fleet point");
  flags.define_int("dim", 500, "synthetic update dimensionality");
  flags.define_int("threads", 0, "thread-pool width (0 = default)");
  flags.define_string("dir", ".", "directory for snapshot files");
  flags.define_string("json", "BENCH_recovery.json",
                      "output path for the machine-readable summary");
  if (!flags.parse(argc, argv)) return 0;
  const auto max_registered =
      static_cast<std::size_t>(flags.get_int("max-registered"));
  const auto sampled_flag = static_cast<std::size_t>(flags.get_int("sampled"));
  const int rounds = std::max(2, static_cast<int>(flags.get_int("rounds")));
  const std::int64_t dim = flags.get_int("dim");
  const int threads = static_cast<int>(flags.get_int("threads"));
  const std::string dir = flags.get_string("dir");
  const std::string json_path = flags.get_string("json");
  if (threads > 0) fhdnn::parallel::set_num_threads(threads);

  fhdnn::print_banner(std::cout, "recovery: snapshot cost vs fleet size");
  fhdnn::bench::print_config_line(
      "max_registered=" + std::to_string(max_registered) +
      " sampled=" + std::to_string(sampled_flag) +
      " rounds=" + std::to_string(rounds) + " dim=" + std::to_string(dim) +
      " threads=" + std::to_string(fhdnn::parallel::num_threads()));

  std::vector<CaseResult> results;
  for (const std::size_t registered :
       {std::size_t{10'000}, std::size_t{100'000}, std::size_t{1'000'000}}) {
    if (registered > max_registered) continue;
    const std::size_t sampled =
        std::min(sampled_flag, registered / 10);
    results.push_back(run_case(registered, sampled, rounds, dim, dir));
  }

  fhdnn::TextTable table({"registered", "sampled", "boundary_bytes",
                          "boundary_write_ms", "boundary_resume_ms",
                          "midround_bytes", "midround_resume_ms"});
  for (const auto& r : results) {
    table.add_row({fhdnn::TextTable::cell(r.registered),
                   fhdnn::TextTable::cell(r.sampled),
                   fhdnn::TextTable::cell(static_cast<std::size_t>(
                       r.boundary_bytes)),
                   fhdnn::TextTable::cell(r.boundary_write_ms),
                   fhdnn::TextTable::cell(r.boundary_resume_ms),
                   fhdnn::TextTable::cell(static_cast<std::size_t>(
                       r.midround_bytes)),
                   fhdnn::TextTable::cell(r.midround_resume_ms)});
  }
  table.print(std::cout);

  fhdnn::CsvWriter csv(std::cout,
                       {"registered", "sampled", "boundary_bytes",
                        "boundary_write_ms", "boundary_resume_ms",
                        "midround_bytes", "midround_write_ms",
                        "midround_resume_ms"});
  for (const auto& r : results) {
    csv.add(r.registered)
        .add(r.sampled)
        .add(static_cast<std::size_t>(r.boundary_bytes))
        .add(r.boundary_write_ms)
        .add(r.boundary_resume_ms)
        .add(static_cast<std::size_t>(r.midround_bytes))
        .add(r.midround_write_ms)
        .add(r.midround_resume_ms)
        .end_row();
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"recovery_cost\",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"dim\": " << dim << ",\n"
       << "  \"threads\": " << fhdnn::parallel::num_threads() << ",\n"
       << "  \"fleets\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"registered\": " << r.registered
         << ", \"sampled\": " << r.sampled
         << ", \"events_round1\": " << r.events_round1
         << ", \"boundary_bytes\": " << r.boundary_bytes
         << ", \"boundary_write_ms\": " << r.boundary_write_ms
         << ", \"boundary_resume_ms\": " << r.boundary_resume_ms
         << ", \"midround_bytes\": " << r.midround_bytes
         << ", \"midround_write_ms\": " << r.midround_write_ms
         << ", \"midround_resume_ms\": " << r.midround_resume_ms << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  fhdnn::bench::write_json_atomic(json_path, json.str());
  return 0;
}
