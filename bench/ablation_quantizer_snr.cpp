// Ablation bench (DESIGN.md E13): two design choices the paper motivates
// analytically, verified empirically.
//
//   1. Quantizer bitwidth B under bit errors: accuracy of federated FHDnn
//      with the AGC quantizer at B in {4, 8, 16, 24} vs the raw-float
//      ablation, at a fixed BER.
//   2. Bundling SNR gain (paper Eq. 4): empirical SNR of the aggregated
//      model vs client count N — should scale ~linearly in N.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  bench::init();
  CliFlags flags;
  flags.define_int("examples", 800, "dataset size");
  flags.define_int("clients", 10, "number of clients");
  flags.define_int("rounds", 6, "communication rounds");
  flags.define_int("hd-dim", 2000, "hyperdimensional dimensionality d");
  flags.define_double("ber", 1e-4, "bit error rate for the bitwidth sweep");
  flags.define_int("seed", 42, "experiment seed");
  if (!flags.parse(argc, argv)) return 0;

  const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double ber = flags.get_double("ber");

  print_banner(std::cout, "Ablation 1: AGC quantizer bitwidth under bit errors");
  bench::print_config_line("ber=" + std::to_string(ber) + " clients=" +
                           std::to_string(n_clients) + " seed=" +
                           std::to_string(seed));
  {
    const auto exp = core::make_experiment_data(
        "mnist", flags.get_int("examples"), n_clients,
        core::Distribution::Iid, seed);
    const auto params = core::paper_default_params(
        n_clients, static_cast<int>(flags.get_int("rounds")), seed);
    const auto cfg = core::fhdnn_config_for(exp.train, flags.get_int("hd-dim"));
    const auto encoded =
        core::encode_for_fhdnn(cfg, exp.train, exp.parts, exp.test);

    TextTable t({"transmission", "bits_per_scalar", "accuracy"});
    std::cout << "CSV:\n";
    CsvWriter csv(std::cout, {"mode", "bits", "accuracy"});
    for (const int bits : {4, 8, 16, 24}) {
      channel::HdUplinkConfig uplink;
      uplink.mode = channel::HdUplinkMode::BitErrors;
      uplink.ber = ber;
      uplink.quantizer_bits = bits;
      const double acc =
          core::run_fhdnn_on_encoded(encoded, params, uplink).final_accuracy();
      t.add_row({"AGC quantizer", TextTable::cell(bits), TextTable::cell(acc)});
      csv.add("agc").add(bits).add(acc).end_row();
    }
    channel::HdUplinkConfig raw;
    raw.mode = channel::HdUplinkMode::BitErrors;
    raw.ber = ber;
    raw.use_quantizer = false;
    const double raw_acc =
        core::run_fhdnn_on_encoded(encoded, params, raw).final_accuracy();
    t.add_row({"raw float32 (ablation)", TextTable::cell(32),
               TextTable::cell(raw_acc)});
    csv.add("raw").add(32).add(raw_acc).end_row();
    std::cout << "\n";
    t.print(std::cout);
  }

  print_banner(std::cout, "Ablation 2: bundling SNR gain vs client count (Eq. 4)");
  {
    Rng rng(seed);
    const std::size_t dim = 50000;
    std::vector<float> signal(dim);
    rng.fill_normal(signal, 0.0F, 1.0F);
    const double client_snr_db = 5.0;
    const double sigma =
        std::sqrt(1.0 / std::pow(10.0, client_snr_db / 10.0));

    TextTable t({"N_clients", "aggregate_SNR_dB", "Eq4_prediction_dB"});
    CsvWriter csv(std::cout, {"n", "snr_db", "predicted_db"});
    for (const std::size_t n : {1U, 2U, 4U, 8U, 16U, 32U}) {
      std::vector<double> agg(dim, 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t i = 0; i < dim; ++i) {
          agg[i] += signal[i] + rng.normal(0.0, sigma);
        }
      }
      double sig_p = 0.0, noise_p = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double s = static_cast<double>(n) * signal[i];
        sig_p += s * s;
        noise_p += (agg[i] - s) * (agg[i] - s);
      }
      const double snr_db = 10.0 * std::log10(sig_p / noise_p);
      const double predicted =
          client_snr_db + 10.0 * std::log10(static_cast<double>(n));
      t.add_row({TextTable::cell(n), TextTable::cell(snr_db),
                 TextTable::cell(predicted)});
      csv.add(n).add(snr_db).add(predicted).end_row();
    }
    std::cout << "\n";
    t.print(std::cout);
  }

  std::cout << "\nShape check: accuracy saturates by B~8-16 and beats the "
               "raw-float ablation; aggregate SNR tracks the Eq. 4 line "
               "(+10log10(N) dB).\n";
  return 0;
}
