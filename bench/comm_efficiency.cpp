// §4.4 — Communication efficiency.
//
// Regenerates the paper's communication accounting:
//   * update sizes: ResNet-18 (11M params) 22 MB vs FHDnn (10 x 10k HD
//     model) 1 MB -> 22x smaller;
//   * data to reach the 80% target: FHDnn converges ~3x faster, so
//     25 MB vs 1.65 GB -> ~66x less data;
//   * LTE clock time: coded 1.6 Mb/s (reliable, required by the CNN) vs
//     uncoded 5.0 Mb/s (FHDnn admits errors), paper: 1.1 h (CIFAR IID) /
//     3.3 h (non-IID) vs 374.3 h.
// The paper-scale table is pure accounting (the formulas of §4.4); the
// measured table runs the scaled-down models in this repo and reports
// actual bytes uploaded to the target accuracy.
#include <iostream>

#include "bench_common.hpp"
#include "channel/lte.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "perf/model_macs.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  bench::init();
  CliFlags flags;
  flags.define_int("examples", 1000, "dataset size (measured table)");
  flags.define_int("clients", 10, "clients (measured table)");
  flags.define_int("rounds", 12, "round budget (measured table)");
  flags.define_int("hd-dim", 2000, "d (measured table)");
  flags.define_double("target", 0.8, "target accuracy");
  flags.define_int("seed", 42, "experiment seed");
  flags.define_bool("skip-cnn", false, "skip the measured CNN run");
  if (!flags.parse(argc, argv)) return 0;

  print_banner(std::cout, "§4.4: communication efficiency — paper scale");
  {
    // Paper-scale accounting: rounds-to-80% from the paper's Fig. 6 reading
    // (FHDnn <25 rounds, ResNet 75 rounds — the 3x convergence factor).
    const std::uint64_t fhdnn_rounds = 25, resnet_rounds = 75;
    const std::uint64_t fhdnn_update = perf::kFhdnnUpdateBytes;      // 1 MB
    const std::uint64_t resnet_update = perf::kResNet18UpdateBytes;  // 22 MB
    const auto fhdnn_total =
        channel::total_upload_bytes(fhdnn_update, fhdnn_rounds);
    const auto resnet_total =
        channel::total_upload_bytes(resnet_update, resnet_rounds);

    TextTable t({"model", "update_size_MB", "rounds_to_80%", "total_data_MB",
                 "reduction_x"});
    t.add_row({"ResNet-18", TextTable::cell(resnet_update / 1e6),
               TextTable::cell(static_cast<int>(resnet_rounds)),
               TextTable::cell(resnet_total / 1e6), "1"});
    t.add_row({"FHDnn", TextTable::cell(fhdnn_update / 1e6),
               TextTable::cell(static_cast<int>(fhdnn_rounds)),
               TextTable::cell(fhdnn_total / 1e6),
               TextTable::cell(static_cast<double>(resnet_total) /
                               static_cast<double>(fhdnn_total))});
    t.print(std::cout);
    std::cout << "(paper: 1.65 GB vs 25 MB -> 66x)\n";

    print_banner(std::cout, "§4.4: LTE clock time");
    channel::LteLinkModel link;
    link.shared_clients = 100;  // paper setting: 100 clients share the medium
    const double resnet_h =
        link.training_seconds(resnet_update * 8, resnet_rounds, false) /
        3600.0;
    // Non-IID FHDnn takes ~3x the rounds of IID in the paper.
    const double fhdnn_iid_h =
        link.training_seconds(fhdnn_update * 8, fhdnn_rounds, true) / 3600.0;
    const double fhdnn_noniid_h =
        link.training_seconds(fhdnn_update * 8, 3 * fhdnn_rounds, true) /
        3600.0;
    TextTable lt({"model", "link_rate_Mbps", "clock_time_h", "paper_h"});
    lt.add_row({"ResNet-18 (coded)", TextTable::cell(link.coded_rate_bps / 1e6),
                TextTable::cell(resnet_h), "374.3"});
    lt.add_row({"FHDnn IID (uncoded)",
                TextTable::cell(link.uncoded_rate_bps / 1e6),
                TextTable::cell(fhdnn_iid_h), "1.1"});
    lt.add_row({"FHDnn non-IID (uncoded)",
                TextTable::cell(link.uncoded_rate_bps / 1e6),
                TextTable::cell(fhdnn_noniid_h), "3.3"});
    lt.print(std::cout);
    std::cout << "(100 clients share the LTE medium, so per-client rate is "
                 "1/100 of the link rate — §3.5. FHDnn's 1.1 h / 3.3 h "
                 "reproduce the paper exactly; the ResNet number lands in "
                 "the same hundreds-of-hours regime, with the paper's extra "
                 "374.3/229 ~ 1.6x coming from scheduling overheads it does "
                 "not itemize.)\n";
  }

  print_banner(std::cout, "§4.4 measured: scaled-down models in this repo");
  {
    const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    const double target = flags.get_double("target");
    const auto exp = core::make_experiment_data(
        "mnist", flags.get_int("examples"), n_clients,
        core::Distribution::Iid, seed);
    auto params = core::paper_default_params(
        n_clients, static_cast<int>(flags.get_int("rounds")), seed);
    const auto fhdnn_cfg =
        core::fhdnn_config_for(exp.train, flags.get_int("hd-dim"));

    channel::HdUplinkConfig clean;
    const auto fh =
        core::run_fhdnn_federated(fhdnn_cfg, exp.train, exp.parts, exp.test,
                                  params, clean);

    TextTable t({"model", "update_bytes", "rounds_to_target",
                 "uplink_bytes_to_target"});
    auto report = [&](const std::string& name, const fl::TrainingHistory& h,
                      std::uint64_t update_bytes) {
      const auto r = h.rounds_to_accuracy(target);
      std::uint64_t bytes = 0;
      if (r) {
        for (const auto& m : h.rounds()) {
          bytes += m.bytes_uplink;
          if (m.round == *r) break;
        }
      }
      t.add_row({name, TextTable::cell(static_cast<std::size_t>(update_bytes)),
                 r ? TextTable::cell(static_cast<int>(*r))
                   : std::string("not reached"),
                 r ? TextTable::cell(static_cast<std::size_t>(bytes))
                   : std::string("-")});
    };
    report("fhdnn", fh, core::fhdnn_update_bytes(fhdnn_cfg));

    if (!flags.get_bool("skip-cnn")) {
      const auto cnn_params = core::cnn_params_for("mnist");
      const auto ch = core::run_cnn_federated(cnn_params, exp.train, exp.parts,
                                              exp.test, params, nullptr);
      report("cnn", ch, core::cnn_update_bytes(cnn_params, exp.train));
    }
    t.print(std::cout);
  }

  std::cout << "\nPaper shape check: FHDnn needs both fewer rounds and "
               "far smaller updates; total-data reduction is the product of "
               "the two factors (66x at paper scale).\n";
  return 0;
}
