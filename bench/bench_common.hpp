// Shared scaffolding for the experiment-harness benches.
//
// Every bench prints: a banner, the configuration (including the seed), a
// human-readable table, and a machine-readable CSV block, so captured
// stdout is enough to re-plot the figure.
#pragma once

#include <iostream>
#include <string>

#include "fl/history.hpp"
// Umbrella re-exports: every bench parses flags and prints tables, so
// bench_common deliberately forwards cli/table even though it does not
// use them itself.
// fhdnn-lint: allow(include-graph-hygiene)
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/snapshot.hpp"
// fhdnn-lint: allow(include-graph-hygiene)
#include "util/table.hpp"

namespace fhdnn::bench {

inline void init() { set_log_level(LogLevel::Warn); }

/// Publish a BENCH_*.json artifact atomically (temp file + rename, see
/// util/snapshot.hpp) so a bench killed mid-write never leaves a torn JSON
/// for the CI artifact step to upload.
inline void write_json_atomic(const std::string& path,
                              const std::string& text) {
  util::atomic_write_text(path, text);
  std::cout << "wrote " << path << "\n";
}

/// Print the standard per-round series of a training history as CSV.
inline void print_history_csv(std::ostream& os, const std::string& label,
                              const fl::TrainingHistory& hist) {
  CsvWriter csv(os, {"series", "round", "accuracy", "bytes_uplink"});
  for (const auto& m : hist.rounds()) {
    csv.add(label)
        .add(m.round)
        .add(m.test_accuracy)
        .add(static_cast<std::size_t>(m.bytes_uplink))
        .end_row();
  }
}

inline void print_config_line(const std::string& line) {
  std::cout << "config: " << line << "\n";
}

}  // namespace fhdnn::bench
