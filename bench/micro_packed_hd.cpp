// Throughput of the bit-packed binary-HD backend vs the scalar float path
// (DESIGN.md §11).
//
// Measures, at the paper's d = 10,000:
//   * float-scalar baseline: HdClassifier::predict (cosine argmax) and
//     hdc::bundle_majority, with the SIMD dispatch pinned to the scalar
//     tier — the golden-oracle cost;
//   * the packed backend per available SIMD tier (scalar popcount, then
//     NEON / AVX2 / AVX-512 where the CPU supports them): pack_rows,
//     classify_packed, bundle_majority_packed;
//   * one end-to-end FedHd round (binary transport) under the best tier.
// The packed representation is 32x smaller and replaces float dot products
// with XOR+popcount, so even its scalar tier should clear the 8x headline
// target against the float baseline; the JSON records whether it did.
// Every path here is pinned bit-exact against the float oracle by
// tests/test_packed.cpp, so this bench is about speed only.
//
// Usage: micro_packed_hd [--d=N] [--classes=N] [--queries=N] [--bundle_n=N]
//                        [--reps=N] [--rounds=N] [--threads=N] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fl/fedhd.hpp"
#include "hdc/classifier.hpp"
#include "hdc/ops.hpp"
#include "hdc/packed.hpp"
#include "tensor/tensor.hpp"
#include "util/cpu.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using fhdnn::Rng;
using fhdnn::Shape;
using fhdnn::Tensor;
using fhdnn::util::SimdTier;

/// Defeats dead-code elimination of the measured ops.
volatile std::uint64_t g_sink = 0;

/// Median wall time of one call to `fn`, in ms. The call is repeated in
/// batches that double until a batch takes at least `min_batch_ms`, so
/// microsecond-scale packed ops still get a stable reading; `reps`
/// batches are then measured and the median per-call time returned.
template <typename Fn>
double measure_ms(Fn&& fn, int reps, double min_batch_ms = 40.0) {
  fn();  // warmup (faults in code/data, sizes any lazy buffers)
  std::uint64_t iters = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms >= min_batch_ms || iters >= (1ULL << 24)) break;
    iters *= 2;
  }
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    samples.push_back(ms / static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct TierResult {
  std::string name;
  double pack_ms;
  double classify_ms;
  double bundle_ms;
};

/// The tiers this CPU can actually run, lowest first (set_simd_tier clamps
/// unsupported requests, so a tier is available iff the request sticks).
std::vector<SimdTier> available_tiers() {
  const SimdTier restore = fhdnn::util::active_simd();
  std::vector<SimdTier> tiers;
  for (SimdTier t : {SimdTier::Scalar, SimdTier::Neon, SimdTier::Avx2,
                     SimdTier::Avx512}) {
    if (fhdnn::util::set_simd_tier(t) == t) tiers.push_back(t);
  }
  fhdnn::util::set_simd_tier(restore);
  return tiers;
}

}  // namespace

int main(int argc, char** argv) {
  fhdnn::bench::init();
  fhdnn::CliFlags flags;
  flags.define_int("d", 10'000, "hypervector dimensionality");
  flags.define_int("classes", 10, "number of class prototypes");
  flags.define_int("queries", 200, "query batch size for classification");
  flags.define_int("bundle_n", 33, "members per majority bundle");
  flags.define_int("reps", 15, "timing repetitions (median reported)");
  flags.define_int("rounds", 3, "FedHd rounds for the end-to-end timing");
  flags.define_int("threads", 1, "thread-pool width");
  flags.define_string("json", "BENCH_throughput.json",
                      "output path for the machine-readable summary");
  if (!flags.parse(argc, argv)) return 0;
  const std::int64_t d = flags.get_int("d");
  const std::int64_t classes = flags.get_int("classes");
  const std::int64_t queries = flags.get_int("queries");
  const std::int64_t bundle_n = flags.get_int("bundle_n");
  const int reps = static_cast<int>(flags.get_int("reps"));
  const int fed_rounds = std::max(1, static_cast<int>(flags.get_int("rounds")));
  const int threads = static_cast<int>(flags.get_int("threads"));
  const std::string json_path = flags.get_string("json");

  fhdnn::parallel::set_num_threads(threads);
  fhdnn::print_banner(std::cout, "micro: packed binary-HD throughput");
  fhdnn::bench::print_config_line(
      "d=" + std::to_string(d) + " classes=" + std::to_string(classes) +
      " queries=" + std::to_string(queries) +
      " bundle_n=" + std::to_string(bundle_n) +
      " reps=" + std::to_string(reps) + " threads=" + std::to_string(threads) +
      " detected=" +
      std::string(
          fhdnn::util::simd_tier_name(fhdnn::util::detected_simd())));

  // Shared workload: bipolar prototypes and queries, so the float and
  // packed paths classify the *same* vectors, plus bundle_n bundle members.
  Rng rng(23);
  const Tensor protos_f =
      fhdnn::hdc::sign(Tensor::randn(Shape{classes, d}, rng));
  const Tensor queries_f =
      fhdnn::hdc::sign(Tensor::randn(Shape{queries, d}, rng));
  const fhdnn::hdc::PackedModel protos_p = fhdnn::hdc::pack_rows(protos_f);
  const fhdnn::hdc::PackedModel queries_p = fhdnn::hdc::pack_rows(queries_f);
  std::vector<Tensor> members_f;
  std::vector<fhdnn::hdc::PackedHV> members_p;
  for (std::int64_t i = 0; i < bundle_n; ++i) {
    members_f.push_back(fhdnn::hdc::random_bipolar(d, rng));
    members_p.push_back(fhdnn::hdc::pack_hv(members_f.back()));
  }
  fhdnn::hdc::HdClassifier clf(classes, d);
  clf.set_prototypes(protos_f);

  // Float-scalar baseline: the oracle path, dispatch pinned to scalar.
  fhdnn::util::set_simd_tier(SimdTier::Scalar);
  const double float_classify_ms = measure_ms(
      [&] { g_sink = g_sink + static_cast<std::uint64_t>(clf.predict(queries_f)[0]); },
      reps);
  const double float_bundle_ms = measure_ms(
      [&] {
        g_sink = g_sink + static_cast<std::uint64_t>(
            fhdnn::hdc::bundle_majority(members_f).numel());
      },
      reps);

  // Packed backend per available tier.
  std::vector<TierResult> tier_results;
  for (SimdTier t : available_tiers()) {
    fhdnn::util::set_simd_tier(t);
    TierResult r;
    r.name = std::string(fhdnn::util::simd_tier_name(t));
    r.pack_ms = measure_ms(
        [&] { g_sink = g_sink + fhdnn::hdc::pack_rows(queries_f).words[0]; }, reps);
    r.classify_ms = measure_ms(
        [&] {
          g_sink = g_sink + static_cast<std::uint64_t>(
              fhdnn::hdc::classify_packed(protos_p, queries_p)[0]);
        },
        reps);
    r.bundle_ms = measure_ms(
        [&] {
          g_sink = g_sink + fhdnn::hdc::bundle_majority_packed(members_p).words[0];
        },
        reps);
    tier_results.push_back(r);
  }
  fhdnn::util::set_simd_tier(fhdnn::util::detected_simd());

  // End-to-end FedHd round (binary transport) under the best tier.
  fhdnn::fl::FedHdConfig cfg;
  cfg.n_clients = 8;
  cfg.client_fraction = 0.5;
  cfg.local_epochs = 1;
  cfg.rounds = fed_rounds;
  cfg.num_classes = classes;
  cfg.hd_dim = d;
  cfg.seed = 7;
  cfg.uplink.mode = fhdnn::channel::HdUplinkMode::BitErrors;
  cfg.uplink.ber = 1e-3;
  cfg.uplink.binary_transport = true;
  std::vector<fhdnn::fl::HdClientData> clients;
  Rng data_rng(29);
  for (std::size_t c = 0; c < cfg.n_clients; ++c) {
    fhdnn::fl::HdClientData cd;
    cd.h = Tensor::randn(Shape{64, d}, data_rng);
    for (int i = 0; i < 64; ++i) {
      cd.labels.push_back(data_rng.randint(0, classes - 1));
    }
    clients.push_back(std::move(cd));
  }
  fhdnn::fl::HdClientData test;
  test.h = Tensor::randn(Shape{128, d}, data_rng);
  for (int i = 0; i < 128; ++i) {
    test.labels.push_back(data_rng.randint(0, classes - 1));
  }
  fhdnn::fl::FedHdTrainer trainer(std::move(clients), std::move(test), cfg);
  std::vector<double> round_ms;
  for (int r = 0; r < fed_rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)trainer.round(r);
    round_ms.push_back(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
  }
  std::sort(round_ms.begin(), round_ms.end());
  const double fedhd_round_ms = round_ms[round_ms.size() / 2];

  // Report. Speedups are against the float-scalar oracle.
  fhdnn::TextTable table(
      {"path", "pack_ms", "classify_ms", "bundle_ms", "classify_speedup",
       "bundle_speedup"});
  table.add_row({"float_scalar", "-", fhdnn::TextTable::cell(float_classify_ms),
                 fhdnn::TextTable::cell(float_bundle_ms), "1", "1"});
  for (const auto& r : tier_results) {
    table.add_row({"packed_" + r.name, fhdnn::TextTable::cell(r.pack_ms),
                   fhdnn::TextTable::cell(r.classify_ms),
                   fhdnn::TextTable::cell(r.bundle_ms),
                   fhdnn::TextTable::cell(float_classify_ms / r.classify_ms),
                   fhdnn::TextTable::cell(float_bundle_ms / r.bundle_ms)});
  }
  table.print(std::cout);
  const TierResult& best = tier_results.back();
  const double classify_speedup = float_classify_ms / best.classify_ms;
  const double bundle_speedup = float_bundle_ms / best.bundle_ms;
  const bool meets_target = classify_speedup >= 8.0 && bundle_speedup >= 8.0;
  std::cout << "best tier " << best.name << ": classify " << classify_speedup
            << "x, bundle " << bundle_speedup
            << "x vs scalar float (target >= 8x: "
            << (meets_target ? "met" : "MISSED") << ")\n"
            << "fedhd round (binary transport, best tier): " << fedhd_round_ms
            << " ms\n\n";

  fhdnn::CsvWriter csv(std::cout, {"path", "pack_ms", "classify_ms",
                                   "bundle_ms"});
  csv.add("float_scalar")
      .add(0.0)
      .add(float_classify_ms)
      .add(float_bundle_ms)
      .end_row();
  for (const auto& r : tier_results) {
    csv.add("packed_" + r.name)
        .add(r.pack_ms)
        .add(r.classify_ms)
        .add(r.bundle_ms)
        .end_row();
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"micro_packed_hd\",\n"
       << "  \"d\": " << d << ",\n"
       << "  \"classes\": " << classes << ",\n"
       << "  \"queries\": " << queries << ",\n"
       << "  \"bundle_n\": " << bundle_n << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"detected_tier\": \""
       << fhdnn::util::simd_tier_name(fhdnn::util::detected_simd())
       << "\",\n"
       << "  \"float_scalar\": { \"classify_ms\": " << float_classify_ms
       << ", \"bundle_ms\": " << float_bundle_ms << " },\n"
       << "  \"tiers\": [\n";
  for (std::size_t i = 0; i < tier_results.size(); ++i) {
    const auto& r = tier_results[i];
    json << "    { \"tier\": \"" << r.name << "\", \"pack_ms\": " << r.pack_ms
         << ", \"classify_ms\": " << r.classify_ms
         << ", \"bundle_ms\": " << r.bundle_ms
         << ", \"classify_speedup_vs_float\": "
         << float_classify_ms / r.classify_ms
         << ", \"bundle_speedup_vs_float\": "
         << float_bundle_ms / r.bundle_ms << " }"
         << (i + 1 < tier_results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"best_tier\": \"" << best.name << "\",\n"
       << "  \"classify_speedup_best\": " << classify_speedup << ",\n"
       << "  \"bundle_speedup_best\": " << bundle_speedup << ",\n"
       << "  \"fedhd_round_ms\": " << fedhd_round_ms << ",\n"
       << "  \"meets_8x_target\": " << (meets_target ? "true" : "false")
       << "\n}\n";
  fhdnn::bench::write_json_atomic(json_path, json.str());
  return 0;
}
