// Fig. 7 — Accuracy of FHDnn vs ResNet across rounds on three datasets.
//
// The paper runs 100 clients / 100 rounds of FedAvg(ResNet) vs federated
// FHDnn on MNIST, FashionMNIST and CIFAR10, finding FHDnn converges ~3x
// faster at comparable final accuracy. This harness reproduces the curves
// on the synthetic stand-ins at laptop scale (defaults: 10 clients,
// 10 rounds, CNN2 for MNIST / MiniResNet otherwise); raise --examples /
// --clients / --rounds to approach paper scale.
#include <iostream>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  bench::init();
  CliFlags flags;
  flags.define_int("examples", 1000, "dataset size per dataset");
  flags.define_int("clients", 10, "number of clients");
  flags.define_int("rounds", 10, "communication rounds");
  flags.define_int("hd-dim", 2000, "hyperdimensional dimensionality d");
  flags.define_int("seed", 42, "experiment seed");
  flags.define_string("datasets", "mnist,fashion,cifar",
                      "comma-separated dataset list");
  flags.define_bool("skip-cnn", false, "skip the CNN baselines");
  if (!flags.parse(argc, argv)) return 0;

  const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));
  const int rounds = static_cast<int>(flags.get_int("rounds"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  print_banner(std::cout, "Fig. 7: FHDnn vs CNN accuracy across rounds");
  bench::print_config_line(
      "clients=" + std::to_string(n_clients) + " rounds=" +
      std::to_string(rounds) + " examples=" +
      std::to_string(flags.get_int("examples")) + " d=" +
      std::to_string(flags.get_int("hd-dim")) + " seed=" +
      std::to_string(seed));

  std::vector<std::string> datasets;
  {
    std::string list = flags.get_string("datasets");
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const auto comma = list.find(',', pos);
      datasets.push_back(list.substr(
          pos, comma == std::string::npos ? comma : comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"dataset", "model", "round", "accuracy"});
  TextTable summary({"dataset", "model", "round1_acc", "final_acc",
                     "rounds_to_0.7"});
  for (const auto& name : datasets) {
    const auto exp = core::make_experiment_data(
        name, flags.get_int("examples"), n_clients, core::Distribution::Iid,
        seed);
    const auto params = core::paper_default_params(n_clients, rounds, seed);
    const auto fhdnn_cfg =
        core::fhdnn_config_for(exp.train, flags.get_int("hd-dim"));

    channel::HdUplinkConfig clean;
    const auto fhdnn = core::run_fhdnn_federated(
        fhdnn_cfg, exp.train, exp.parts, exp.test, params, clean);
    for (const auto& m : fhdnn.rounds()) {
      csv.add(name).add("fhdnn").add(m.round).add(m.test_accuracy).end_row();
    }
    auto row = [&](const std::string& model, const fl::TrainingHistory& h) {
      const auto r70 = h.rounds_to_accuracy(0.7);
      summary.add_row({name, model,
                       TextTable::cell(h.rounds().front().test_accuracy),
                       TextTable::cell(h.final_accuracy()),
                       r70 ? TextTable::cell(static_cast<int>(*r70))
                           : std::string(">" + std::to_string(rounds))});
    };
    row("fhdnn", fhdnn);

    if (!flags.get_bool("skip-cnn")) {
      const auto cnn_params = core::cnn_params_for(name);
      const auto cnn = core::run_cnn_federated(
          cnn_params, exp.train, exp.parts, exp.test, params, nullptr);
      for (const auto& m : cnn.rounds()) {
        csv.add(name).add("cnn").add(m.round).add(m.test_accuracy).end_row();
      }
      row("cnn", cnn);
    }
  }
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nPaper shape check: FHDnn reaches high accuracy within the "
               "first 1-2 rounds (one-shot bundling) and hits any target in "
               "fewer rounds than the CNN at comparable final accuracy.\n";
  return 0;
}
