// Fig. 6 — Accuracy and communication rounds for various hyperparameters.
//
// The paper sweeps E (local epochs), B (batch size) and C (client fraction)
// for FHDnn and ResNet on IID and non-IID data, and reports (a) the
// smoothed mean accuracy-vs-round curve with its spread across
// hyperparameters, and (b) that FHDnn reaches the target accuracy ~3x
// sooner and is nearly insensitive to the hyperparameters (B provably so —
// HD local training is batch-free).
//
// This harness runs the sweep at laptop scale and reports, per model and
// distribution: mean/min/max final accuracy over the sweep, the spread, and
// the mean rounds-to-target. The CNN sweep covers E x C with B fixed per
// run (B only affects the CNN; the FHDnn rows list it for symmetry).
#include <iostream>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  bench::init();
  CliFlags flags;
  flags.define_string("dataset", "mnist", "mnist|fashion|cifar");
  flags.define_int("examples", 800, "dataset size");
  flags.define_int("clients", 10, "number of clients");
  flags.define_int("rounds", 8, "communication rounds");
  flags.define_int("hd-dim", 2000, "hyperdimensional dimensionality d");
  flags.define_double("target", 0.7, "target accuracy for rounds-to-target");
  flags.define_int("seed", 42, "experiment seed");
  flags.define_bool("skip-cnn", false, "FHDnn only");
  if (!flags.parse(argc, argv)) return 0;

  const std::string dataset = flags.get_string("dataset");
  const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));
  const int rounds = static_cast<int>(flags.get_int("rounds"));
  const double target = flags.get_double("target");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const std::vector<int> epochs{1, 2, 4};
  const std::vector<std::size_t> batches{10, 32, 64};
  const std::vector<double> fractions{0.1, 0.2, 0.5};

  print_banner(std::cout, "Fig. 6: hyperparameter sensitivity (E, B, C)");
  bench::print_config_line("dataset=" + dataset + " clients=" +
                           std::to_string(n_clients) + " rounds=" +
                           std::to_string(rounds) + " target=" +
                           std::to_string(target) + " seed=" +
                           std::to_string(seed));

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"model", "distribution", "E", "B", "C",
                            "final_accuracy", "rounds_to_target"});
  TextTable summary({"model", "dist", "mean_final_acc", "min..max (spread)",
                     "mean_rounds_to_target"});

  for (const auto dist :
       {core::Distribution::Iid, core::Distribution::NonIid}) {
    const auto exp = core::make_experiment_data(
        dataset, flags.get_int("examples"), n_clients, dist, seed);
    const auto fhdnn_cfg =
        core::fhdnn_config_for(exp.train, flags.get_int("hd-dim"));
    const auto encoded =
        core::encode_for_fhdnn(fhdnn_cfg, exp.train, exp.parts, exp.test);
    const auto cnn_params = core::cnn_params_for(dataset);

    stats::Accumulator fhdnn_acc, fhdnn_rounds, cnn_acc, cnn_rounds;
    for (const int e : epochs) {
      for (const double c : fractions) {
        for (const std::size_t b : batches) {
          core::FederatedParams params =
              core::paper_default_params(n_clients, rounds, seed);
          params.local_epochs = e;
          params.client_fraction = c;
          params.batch_size = b;

          // FHDnn: B has no effect on HD training; run once per (E, C) and
          // record identical rows for each B (documents the invariance).
          if (b == batches.front()) {
            channel::HdUplinkConfig clean;
            const auto hist =
                core::run_fhdnn_on_encoded(encoded, params, clean);
            const auto r = hist.rounds_to_accuracy(target);
            for (const std::size_t bb : batches) {
              csv.add("fhdnn")
                  .add(core::to_string(dist))
                  .add(e)
                  .add(bb)
                  .add(c)
                  .add(hist.final_accuracy())
                  .add(r ? static_cast<std::int64_t>(*r)
                         : static_cast<std::int64_t>(-1))
                  .end_row();
            }
            fhdnn_acc.add(hist.final_accuracy());
            if (r) fhdnn_rounds.add(static_cast<double>(*r));
          }

          if (!flags.get_bool("skip-cnn") && b == 10) {
            // CNN sweep over E x C (B fixed at the paper default to bound
            // runtime; B's effect on the CNN shows in EXPERIMENTS.md).
            const auto hist = core::run_cnn_federated(
                cnn_params, exp.train, exp.parts, exp.test, params, nullptr);
            const auto r = hist.rounds_to_accuracy(target);
            csv.add("cnn")
                .add(core::to_string(dist))
                .add(e)
                .add(b)
                .add(c)
                .add(hist.final_accuracy())
                .add(r ? static_cast<std::int64_t>(*r)
                       : static_cast<std::int64_t>(-1))
                .end_row();
            cnn_acc.add(hist.final_accuracy());
            if (r) cnn_rounds.add(static_cast<double>(*r));
          }
        }
      }
    }
    auto spread = [](const stats::Accumulator& a) {
      return TextTable::cell(a.min()) + ".." + TextTable::cell(a.max()) +
             " (" + TextTable::cell(a.max() - a.min()) + ")";
    };
    summary.add_row({"fhdnn", core::to_string(dist),
                     TextTable::cell(fhdnn_acc.mean()), spread(fhdnn_acc),
                     fhdnn_rounds.count()
                         ? TextTable::cell(fhdnn_rounds.mean())
                         : std::string("n/a")});
    if (!flags.get_bool("skip-cnn")) {
      summary.add_row({"cnn", core::to_string(dist),
                       TextTable::cell(cnn_acc.mean()), spread(cnn_acc),
                       cnn_rounds.count() ? TextTable::cell(cnn_rounds.mean())
                                          : std::string(">budget")});
    }
  }

  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nPaper shape check: FHDnn's accuracy spread across "
               "hyperparameters is narrow and its mean rounds-to-target is "
               "~3x smaller than the CNN's; B does not affect FHDnn at "
               "all.\n";
  return 0;
}
