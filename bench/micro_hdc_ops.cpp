// Google-benchmark micro benches for the HDC primitives: encode, bundle,
// refine, similarity, quantize — the operations whose lightness underpins
// the paper's client-compute claims (Table 1).
#include <benchmark/benchmark.h>

#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/quantizer.hpp"
#include "util/rng.hpp"

namespace {

using namespace fhdnn;

constexpr std::int64_t kFeatures = 256;
constexpr std::int64_t kClasses = 10;
constexpr std::int64_t kBatch = 32;

const hdc::RandomProjectionEncoder& encoder(std::int64_t d) {
  static std::map<std::int64_t, hdc::RandomProjectionEncoder> cache;
  auto it = cache.find(d);
  if (it == cache.end()) {
    Rng rng(1);
    it = cache.emplace(d, hdc::RandomProjectionEncoder(kFeatures, d, rng))
             .first;
  }
  return it->second;
}

Tensor features_batch() {
  Rng rng(2);
  return Tensor::randn(Shape{kBatch, kFeatures}, rng);
}

void BM_Encode(benchmark::State& state) {
  const auto d = state.range(0);
  const auto& enc = encoder(d);
  const Tensor z = features_batch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(z));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_Encode)->Arg(1024)->Arg(4096)->Arg(10000);

void BM_Bundle(benchmark::State& state) {
  const auto d = state.range(0);
  const auto& enc = encoder(d);
  const Tensor h = enc.encode(features_batch());
  std::vector<std::int64_t> labels(kBatch);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int64_t>(i % kClasses);
  }
  for (auto _ : state) {
    hdc::HdClassifier clf(kClasses, d);
    clf.bundle(h, labels);
    benchmark::DoNotOptimize(clf.prototypes());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_Bundle)->Arg(1024)->Arg(4096)->Arg(10000);

void BM_RefineEpoch(benchmark::State& state) {
  const auto d = state.range(0);
  const auto& enc = encoder(d);
  const Tensor h = enc.encode(features_batch());
  std::vector<std::int64_t> labels(kBatch);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int64_t>(i % kClasses);
  }
  hdc::HdClassifier clf(kClasses, d);
  clf.bundle(h, labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.refine_epoch(h, labels));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_RefineEpoch)->Arg(1024)->Arg(4096)->Arg(10000);

void BM_Similarities(benchmark::State& state) {
  const auto d = state.range(0);
  const auto& enc = encoder(d);
  const Tensor h = enc.encode(features_batch());
  std::vector<std::int64_t> labels(kBatch, 0);
  hdc::HdClassifier clf(kClasses, d);
  clf.bundle(h, labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.similarities(h));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_Similarities)->Arg(1024)->Arg(4096)->Arg(10000);

void BM_QuantizeRows(benchmark::State& state) {
  const auto d = state.range(0);
  Rng rng(3);
  const Tensor protos = Tensor::randn(Shape{kClasses, d}, rng, 10.0F);
  const hdc::Quantizer quant(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant.quantize_rows(protos));
  }
  state.SetItemsProcessed(state.iterations() * kClasses * d);
}
BENCHMARK(BM_QuantizeRows)->Arg(1024)->Arg(10000);

void BM_Reconstruct(benchmark::State& state) {
  const auto d = state.range(0);
  const auto& enc = encoder(d);
  const Tensor h = enc.encode_linear(features_batch());
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.reconstruct(h));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_Reconstruct)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
