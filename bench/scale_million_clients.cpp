// Discrete-event federation at AIoT fleet scale (DESIGN.md §12).
//
// Registers a sparse ClientPopulation of --registered clients (default one
// million) and runs --rounds deadline-based rounds sampling --sampled of
// them each, with a synthetic HD learner whose update is a pure function
// of the client's rng fork — no per-client state, no datasets, so peak
// memory is bounded by the round cohort, not the fleet. Aggregation runs
// through the exact-sum fan-in tree (util/exactsum.hpp) at --fan-in, the
// same primitive fl/hierarchy.cpp pins bit-exact against flat reduction.
//
// Reports peak RSS (VmHWM), processed events/sec, and rounds/sec, and
// emits BENCH_scale.json for CI.
//
// Usage: scale_million_clients [--registered=N] [--sampled=N] [--rounds=N]
//                              [--dim=N] [--fan-in=N] [--threads=N]
//                              [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "bench_common.hpp"
#include "channel/transport.hpp"
#include "fl/engine.hpp"
#include "fl/population.hpp"
#include "tensor/tensor.hpp"
#include "util/exactsum.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using fhdnn::Rng;
using fhdnn::Shape;
using fhdnn::Tensor;

/// Synthetic HD learner: each client's "update" is a d-dimensional noisy
/// class-anchor vector derived from its rng fork. Stateless across
/// clients — exactly what lets the fleet scale past memory.
class SyntheticHdLearner final : public fhdnn::fl::LocalLearner<Tensor> {
 public:
  explicit SyntheticHdLearner(std::int64_t dim) : dim_(dim) {}

  TrainResult train(std::size_t client, Rng& client_rng) override {
    TrainResult r;
    r.update = Tensor(Shape{dim_});
    auto out = r.update.data();
    // Anchor sign pattern from the client id, jittered by the round fork.
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double anchor = ((client + i) % 7 < 3) ? 1.0 : -1.0;
      out[i] = static_cast<float>(anchor + client_rng.uniform(-0.25, 0.25));
    }
    r.loss = 0.5;
    return r;
  }

  double evaluate() override { return 0.0; }

 private:
  std::int64_t dim_;
};

/// Binary-HD uplink accounting: one bit per dimension on the air. The
/// payload itself passes through unchanged (the bench measures the event
/// machinery, not channel corruption).
class BinaryHdTransport final : public fhdnn::channel::Transport<Tensor> {
 public:
  explicit BinaryHdTransport(std::int64_t dim) : dim_(dim) {}

  fhdnn::channel::TransportStats transmit(Tensor& /*update*/,
                                          std::size_t /*client*/,
                                          Rng& /*client_rng*/,
                                          const Rng& /*round_rng*/)
      const override {
    fhdnn::channel::TransportStats s;
    s.payload_scalars = static_cast<std::uint64_t>(dim_);
    s.payload_bytes = static_cast<std::uint64_t>((dim_ + 7) / 8);
    s.bits_on_air = static_cast<std::uint64_t>(dim_);
    return s;
  }

  std::uint64_t update_bytes(std::uint64_t scalars) const override {
    return (scalars + 7) / 8;
  }

  std::string name() const override { return "binary-hd"; }

 private:
  std::int64_t dim_;
};

/// Streams updates through the exact-sum fan-in tree: leaves of `fan_in`
/// updates merge into the root accumulator, so the reduction is the same
/// shape hierarchical_sum pins — and, because ExactSumVector is exactly
/// associative, bit-identical to a flat sum regardless of fan-in.
class TreeSumAggregator final : public fhdnn::fl::Aggregator<Tensor> {
 public:
  TreeSumAggregator(std::int64_t dim, std::size_t fan_in)
      : dim_(static_cast<std::size_t>(dim)),
        fan_in_(std::max<std::size_t>(fan_in, 2)),
        root_(dim_),
        leaf_(dim_),
        global_(Shape{dim}) {}

  void begin_round() override {
    root_.clear();
    leaf_.clear();
    leaf_count_ = 0;
    weight_total_ = 0.0;
    merges_ = 0;
  }

  void accumulate(std::size_t client, Tensor&& update) override {
    accumulate_weighted(client, std::move(update), 1.0);
  }

  void accumulate_weighted(std::size_t /*client*/, Tensor&& update,
                           double weight) override {
    if (weight != 1.0) {
      for (auto& v : update.data()) v *= static_cast<float>(weight);
    }
    leaf_.add(update.data());
    weight_total_ += weight;
    if (++leaf_count_ == fan_in_) flush_leaf();
  }

  void commit(std::size_t delivered) override {
    commit_weighted(delivered, static_cast<double>(delivered));
  }

  void commit_weighted(std::size_t /*n_updates*/,
                       double total_weight) override {
    flush_leaf();
    root_.round_to(global_.data());
    if (total_weight > 0.0) {
      const float inv = 1.0F / static_cast<float>(total_weight);
      for (auto& v : global_.data()) v *= inv;
    }
  }

  const Tensor& global() const { return global_; }
  std::size_t merges() const { return merges_; }

 private:
  void flush_leaf() {
    if (leaf_count_ == 0) return;
    root_.add(leaf_);
    leaf_.clear();
    leaf_count_ = 0;
    ++merges_;
  }

  std::size_t dim_;
  std::size_t fan_in_;
  fhdnn::util::ExactSumVector root_;
  fhdnn::util::ExactSumVector leaf_;
  std::size_t leaf_count_ = 0;
  double weight_total_ = 0.0;
  std::size_t merges_ = 0;
  Tensor global_;
};

/// Peak resident set in MiB: VmHWM from /proc/self/status, falling back to
/// getrusage (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream is(line.substr(6));
      double kib = 0.0;
      is >> kib;
      if (kib > 0.0) return kib / 1024.0;
    }
  }
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  fhdnn::bench::init();
  fhdnn::CliFlags flags;
  flags.define_int("registered", 1'000'000, "registered fleet size");
  flags.define_int("sampled", 10'000, "clients sampled per round");
  flags.define_int("rounds", 3, "federated rounds to simulate");
  flags.define_int("dim", 1000, "synthetic HD update dimensionality");
  flags.define_int("fan-in", 16, "aggregation tree fan-in");
  flags.define_int("threads", 0, "thread-pool width (0 = default)");
  flags.define_string("json", "BENCH_scale.json",
                      "output path for the machine-readable summary");
  if (!flags.parse(argc, argv)) return 0;
  const auto registered = static_cast<std::size_t>(flags.get_int("registered"));
  const auto sampled = static_cast<std::size_t>(flags.get_int("sampled"));
  const int rounds = static_cast<int>(flags.get_int("rounds"));
  const std::int64_t dim = flags.get_int("dim");
  const auto fan_in = static_cast<std::size_t>(flags.get_int("fan-in"));
  const int threads = static_cast<int>(flags.get_int("threads"));
  const std::string json_path = flags.get_string("json");
  if (threads > 0) fhdnn::parallel::set_num_threads(threads);

  fhdnn::print_banner(std::cout, "scale: discrete-event million-client rounds");
  fhdnn::bench::print_config_line(
      "registered=" + std::to_string(registered) +
      " sampled=" + std::to_string(sampled) +
      " rounds=" + std::to_string(rounds) + " dim=" + std::to_string(dim) +
      " fan_in=" + std::to_string(fan_in) +
      " threads=" + std::to_string(fhdnn::parallel::num_threads()));

  SyntheticHdLearner learner(dim);
  BinaryHdTransport transport(dim);
  TreeSumAggregator aggregator(dim, fan_in);
  fhdnn::fl::ProtocolAdapter<Tensor> adapter(learner, transport, aggregator);

  fhdnn::fl::EngineConfig cfg;
  cfg.n_clients = 0;
  cfg.client_fraction =
      static_cast<double>(sampled) / static_cast<double>(registered);
  cfg.rounds = rounds;
  cfg.eval_every = rounds;  // evaluation is a stub; skip per-round calls
  cfg.seed = 23;
  cfg.name = "scale";
  cfg.population.n_registered = registered;
  cfg.population.mean_availability = 0.8;
  cfg.population.straggler_fraction = 0.1;
  cfg.population.straggler_slowdown = 4.0;
  cfg.population.compute_spread = 0.5;
  cfg.population.link_spread_max = 2.0;
  cfg.deadline.enabled = true;
  cfg.deadline.timeline.update_bits = static_cast<std::uint64_t>(dim);
  cfg.deadline.timeline.fhdnn = true;
  cfg.deadline.timeline.compute_jitter = 0.1;
  cfg.deadline.deadline_factor = 4.0;
  fhdnn::fl::RoundEngine engine(cfg, adapter);

  const auto t0 = std::chrono::steady_clock::now();
  const auto history = engine.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t events_total = 0;
  std::uint64_t accepted_total = 0;
  std::uint64_t sampled_total = 0;
  for (const auto& m : history.rounds()) {
    events_total += m.events;
    accepted_total += m.clients;
    sampled_total += m.sampled;
  }
  const double rss = peak_rss_mib();
  const double events_per_sec =
      wall > 0.0 ? static_cast<double>(events_total) / wall : 0.0;
  const double rounds_per_sec =
      wall > 0.0 ? static_cast<double>(rounds) / wall : 0.0;

  fhdnn::TextTable table({"round", "sampled", "accepted", "dropped",
                          "timed_out", "events", "sim_seconds"});
  for (const auto& m : history.rounds()) {
    table.add_row({fhdnn::TextTable::cell(static_cast<int>(m.round)),
                   fhdnn::TextTable::cell(m.sampled),
                   fhdnn::TextTable::cell(m.clients),
                   fhdnn::TextTable::cell(m.dropped),
                   fhdnn::TextTable::cell(m.timed_out),
                   fhdnn::TextTable::cell(static_cast<std::size_t>(m.events)),
                   fhdnn::TextTable::cell(m.simulated_round_seconds)});
  }
  table.print(std::cout);
  std::cout << "peak_rss_mib=" << rss << " events=" << events_total
            << " events_per_sec=" << events_per_sec
            << " rounds_per_sec=" << rounds_per_sec
            << " sim_seconds=" << engine.sim_seconds()
            << " tree_merges=" << aggregator.merges() << "\n\n";

  fhdnn::CsvWriter csv(std::cout, {"round", "sampled", "accepted", "dropped",
                                   "timed_out", "events", "sim_seconds"});
  for (const auto& m : history.rounds()) {
    csv.add(static_cast<int>(m.round))
        .add(static_cast<std::size_t>(m.sampled))
        .add(static_cast<std::size_t>(m.clients))
        .add(static_cast<std::size_t>(m.dropped))
        .add(static_cast<std::size_t>(m.timed_out))
        .add(static_cast<std::size_t>(m.events))
        .add(m.simulated_round_seconds)
        .end_row();
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"scale_million_clients\",\n"
       << "  \"registered\": " << registered << ",\n"
       << "  \"sampled_per_round\": " << sampled << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"dim\": " << dim << ",\n"
       << "  \"fan_in\": " << fan_in << ",\n"
       << "  \"threads\": " << fhdnn::parallel::num_threads() << ",\n"
       << "  \"wall_seconds\": " << wall << ",\n"
       << "  \"peak_rss_mib\": " << rss << ",\n"
       << "  \"events_total\": " << events_total << ",\n"
       << "  \"events_per_sec\": " << events_per_sec << ",\n"
       << "  \"rounds_per_sec\": " << rounds_per_sec << ",\n"
       << "  \"sampled_total\": " << sampled_total << ",\n"
       << "  \"accepted_total\": " << accepted_total << ",\n"
       << "  \"sim_seconds\": " << engine.sim_seconds() << "\n"
       << "}\n";
  fhdnn::bench::write_json_atomic(json_path, json.str());
  return 0;
}
