// Fig. 4 — Noise robustness of hyperdimensional encodings.
//
// The paper encodes an MNIST image, adds Gaussian noise *in HD space*, then
// reconstructs, showing the result is far cleaner than adding the same
// noise in sample space. This harness regenerates the quantitative version:
// for a sweep of noise levels it reports the reconstruction MSE/PSNR of
//   (a) noise added in sample space (no HD),
//   (b) noise added in HD space, then holographic readout (paper Eq. 5),
// for a synthetic-MNIST image. Expected shape: (b) beats (a) by a wide and
// growing margin, since HD noise averages out over d dimensions.
#include <array>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  bench::init();
  CliFlags flags;
  flags.define_int("hd-dim", 10000, "hyperdimensional dimensionality d");
  flags.define_int("trials", 20, "noise draws averaged per setting");
  flags.define_int("seed", 42, "experiment seed");
  if (!flags.parse(argc, argv)) return 0;

  const auto d = flags.get_int("hd-dim");
  const int trials = static_cast<int>(flags.get_int("trials"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  print_banner(std::cout, "Fig. 4: noise robustness of HD encodings");
  bench::print_config_line("d=" + std::to_string(d) +
                           " trials=" + std::to_string(trials) +
                           " seed=" + std::to_string(seed));

  Rng rng(seed);
  const auto ds = data::synthetic_mnist(10, rng);
  const std::int64_t n = ds.example_numel();  // 784
  Tensor x(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) x(i) = ds.x.at(i);  // first image

  Rng enc_rng = rng.fork("encoder");
  hdc::RandomProjectionEncoder enc(n, d, enc_rng);
  const Tensor h = enc.encode_linear(x);
  const double h_rms = h.l2_norm() / std::sqrt(static_cast<double>(d));
  const double x_rms = x.l2_norm() / std::sqrt(static_cast<double>(n));

  // Noise-free reconstruction floor of the random projection itself
  // (~||x||^2/d per coordinate); the robustness claim is about the *excess*
  // error noise adds on top of this floor.
  const Tensor x_floor = enc.reconstruct(h);
  const double floor_mse = stats::mse(x.data(), x_floor.data());
  std::cout << "noise-free reconstruction floor MSE: " << floor_mse << "\n";

  TextTable table({"noise_factor", "mse_sample_space", "mse_hd_space",
                   "mse_hd_excess", "psnr_sample_dB", "psnr_hd_dB",
                   "hd_excess_gain_x"});
  std::vector<std::array<double, 3>> rows;
  Rng noise_rng = rng.fork("noise");
  for (const double factor : {0.1, 0.25, 0.5, 1.0, 2.0}) {
    stats::Accumulator mse_sample, mse_hd;
    for (int t = 0; t < trials; ++t) {
      // Sample-space corruption at noise stddev = factor * signal RMS.
      Tensor xs = x;
      for (auto& v : xs.data()) {
        v += static_cast<float>(noise_rng.normal(0.0, factor * x_rms));
      }
      mse_sample.add(stats::mse(x.data(), xs.data()));
      // HD-space corruption at the same *relative* level, then readout.
      Tensor hn = h;
      for (auto& v : hn.data()) {
        v += static_cast<float>(noise_rng.normal(0.0, factor * h_rms));
      }
      const Tensor xr = enc.reconstruct(hn);
      mse_hd.add(stats::mse(x.data(), xr.data()));
    }
    const double psnr_s = 10.0 * std::log10(1.0 / mse_sample.mean());
    const double psnr_h = 10.0 * std::log10(1.0 / mse_hd.mean());
    const double excess = std::max(0.0, mse_hd.mean() - floor_mse);
    table.add_row({TextTable::cell(factor), TextTable::cell(mse_sample.mean()),
                   TextTable::cell(mse_hd.mean()), TextTable::cell(excess),
                   TextTable::cell(psnr_s), TextTable::cell(psnr_h),
                   TextTable::cell(mse_sample.mean() /
                                   std::max(excess, 1e-12))});
    rows.push_back({factor, mse_sample.mean(), mse_hd.mean()});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"noise_factor", "mse_sample", "mse_hd"});
  for (const auto& r : rows) csv.add(r[0]).add(r[1]).add(r[2]).end_row();

  std::cout << "\nPaper shape check: sample-space MSE grows quadratically "
               "with the noise level while HD-space MSE stays near the "
               "projection floor — the excess noise is suppressed by ~d/n "
               "through the holographic readout (Eq. 5).\n";
  return 0;
}
