// §3.6 — Convergence behaviour of FHDnn, quantified.
//
// The paper argues (via L-smoothness + strong convexity of the HD
// objective) that FHDnn converges at O(1/T), which CNN-based FL cannot
// guarantee. This harness measures it: it trains federated HD models,
// records the global model's distance-to-final-model across rounds, and
// fits a power law distance ~ C / t^p. A clearly positive exponent with a
// good log-log fit is the empirical counterpart of the claim. It also runs
// the wall-clock timeline simulator to convert rounds into seconds on the
// calibrated edge devices (the §4.4 clock-time view of convergence).
#include <iostream>

#include "bench_common.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/convergence.hpp"
#include "fl/fedhd.hpp"
#include "fl/timeline.hpp"
#include "hdc/encoder.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  bench::init();
  CliFlags flags;
  flags.define_int("hd-dim", 2000, "hyperdimensional dimensionality d");
  flags.define_int("examples", 800, "ISOLET-like dataset size");
  flags.define_int("clients", 8, "number of clients");
  flags.define_int("rounds", 16, "communication rounds");
  flags.define_int("seed", 42, "experiment seed");
  if (!flags.parse(argc, argv)) return 0;

  const auto d = flags.get_int("hd-dim");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const int rounds = static_cast<int>(flags.get_int("rounds"));
  const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));

  print_banner(std::cout, "§3.6: convergence rate of federated HD training");
  bench::print_config_line("d=" + std::to_string(d) + " clients=" +
                           std::to_string(n_clients) + " rounds=" +
                           std::to_string(rounds) + " seed=" +
                           std::to_string(seed));

  Rng rng(seed);
  data::IsoletSpec spec;
  spec.n = flags.get_int("examples");
  spec.separation = 0.5;  // hard enough that refinement keeps moving
  const auto ds = data::make_isolet_like(spec, rng);
  const auto split = data::train_test_split(ds, 0.2, rng);
  Rng er = rng.fork("enc");
  hdc::RandomProjectionEncoder enc(spec.dims, d, er);
  const auto parts = data::partition_iid(split.train, n_clients, rng);
  std::vector<fl::HdClientData> clients;
  for (const auto& p : parts) {
    const auto sub = split.train.subset(p);
    clients.push_back({enc.encode(sub.x), sub.labels});
  }
  const fl::HdClientData test_enc{enc.encode(split.test.x), split.test.labels};

  TextTable t({"E", "final_acc", "decay_exponent_p", "r_squared",
               "consistent_with_O(1/T)"});
  std::cout << "CSV:\n";
  CsvWriter csv(std::cout, {"E", "final_acc", "exponent", "r2"});
  fl::TrainingHistory fhdnn_history;
  for (const int epochs : {1, 2, 4}) {
    fl::FedHdConfig cfg;
    cfg.n_clients = n_clients;
    cfg.client_fraction = 0.5;
    cfg.local_epochs = epochs;
    cfg.rounds = rounds;
    cfg.num_classes = spec.classes;
    cfg.hd_dim = d;
    cfg.seed = seed + static_cast<std::uint64_t>(epochs);
    fl::FedHdTrainer trainer(clients, test_enc, cfg);
    fl::ModelTrajectory traj;
    fl::TrainingHistory hist;
    for (int r = 1; r <= rounds; ++r) {
      hist.add(trainer.round(r));
      traj.record(trainer.global().prototypes());
    }
    const auto fit = traj.fit();
    t.add_row({TextTable::cell(epochs), TextTable::cell(hist.final_accuracy()),
               TextTable::cell(fit.exponent), TextTable::cell(fit.r_squared),
               fit.exponent > 0.3 ? "yes" : "no"});
    csv.add(epochs).add(hist.final_accuracy()).add(fit.exponent)
        .add(fit.r_squared).end_row();
    if (epochs == 2) fhdnn_history = hist;
  }
  std::cout << "\n";
  t.print(std::cout);

  print_banner(std::cout, "Clock-time view (timeline simulation, E=2)");
  {
    channel::LteLinkModel link;
    link.shared_clients = 100;
    const double target = 0.8;
    TextTable tt({"device", "model", "s/round (sim)", "seconds_to_" +
                  format_double(target)});
    for (const auto& dev : {perf::DeviceProfile::raspberry_pi_3b(),
                            perf::DeviceProfile::jetson()}) {
      // FHDnn: measured history + simulated per-round cost.
      fl::TimelineConfig fc;
      fc.device = dev;
      fc.link = link;
      fc.workload = perf::ClientWorkload::paper_reference();
      fc.update_bits = 8'000'000;  // 1 MB
      fc.fhdnn = true;
      const fl::FlTimeline ftl(fc);
      Rng trng(seed);
      const auto frounds = ftl.simulate(rounds, 4, trng);
      const double fsec =
          ftl.seconds_to_accuracy(fhdnn_history, target, frounds);
      tt.add_row({dev.name, "fhdnn",
                  TextTable::cell(frounds[0].total_seconds),
                  fsec >= 0 ? TextTable::cell(fsec) : std::string("not reached")});

      // CNN: paper-scale accounting (75 rounds to the target).
      auto cc = fc;
      cc.fhdnn = false;
      cc.update_bits = 22ULL * 8'000'000;
      const fl::FlTimeline ctl(cc);
      Rng trng2(seed);
      const auto crounds = ctl.simulate(75, 4, trng2);
      tt.add_row({dev.name, "resnet (75 rounds, accounting)",
                  TextTable::cell(crounds[0].total_seconds),
                  TextTable::cell(fl::FlTimeline::campaign_seconds(crounds))});
    }
    tt.print(std::cout);
  }

  std::cout << "\nShape check: every E fits a clearly positive decay "
               "exponent (model trajectory contracts toward its fixpoint, "
               "consistent with §3.6's O(1/T) convergence claim), and the "
               "simulated seconds-to-target gap between FHDnn and the CNN "
               "spans orders of magnitude.\n";
  return 0;
}
