// Serving-seam throughput: handshake (connections/sec) against a
// ServerRoundDriver, and full federated round latency vs concurrent
// loopback workers — the in-process stand-in for fhdnnd's socket path,
// exercising the same wire encode/validate/decode and collection loop
// without kernel noise. Emits BENCH_serving.json for CI.
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>  // fhdnn-lint: allow(raw-thread) — bench hosts worker threads
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "fl/serving.hpp"
#include "net/connection.hpp"
#include "net/loopback.hpp"
#include "util/parallel.hpp"
#include "wire/messages.hpp"
#include "workload.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Handshakes/sec: workers only speak the two-frame hello exchange, so this
/// isolates frame encode + CRC validate + driver bookkeeping per connection.
double bench_handshakes(int n, std::uint32_t fp, const std::string& proto) {
  fhdnn::fl::ServerRoundDriver driver(fp, proto);
  std::vector<std::unique_ptr<fhdnn::net::Connection>> held;
  std::vector<std::thread> threads;  // fhdnn-lint: allow(raw-thread)
  held.reserve(static_cast<std::size_t>(n));
  threads.reserve(static_cast<std::size_t>(n));
  const auto start = Clock::now();
  for (int i = 0; i < n; ++i) {
    auto [worker_end, server_end] = fhdnn::net::make_loopback_pair();
    held.push_back(std::move(worker_end));
    fhdnn::net::Connection& conn = *held.back();
    threads.emplace_back([&conn, fp, proto] {
      fhdnn::net::MessageChannel chan(conn);
      fhdnn::wire::HelloMsg hello;
      hello.config_fingerprint = fp;
      hello.protocol = proto;
      chan.send(hello.to_frame());
      while (!chan.flush()) {
      }
      (void)fhdnn::wire::HelloAckMsg::from_frame(chan.recv(30000));
    });
    (void)driver.add_worker(std::move(server_end));
  }
  const double wall = seconds_since(start);
  for (auto& t : threads) t.join();
  return wall;
}

struct ServedRun {
  double wall_seconds = 0.0;
  std::uint64_t wire_sent = 0;
  std::uint64_t wire_received = 0;
};

/// One full served run: `n_workers` loopback workers, each a faithful
/// workload replica on its own thread, driven through rounds by the server.
ServedRun run_with_workers(int n_workers, const fhdnn::workload::Options& opt) {
  using namespace fhdnn;
  auto server = workload::make_workload(opt);
  fl::ServerRoundDriver driver(server->config_fingerprint(), opt.protocol);
  std::vector<std::unique_ptr<workload::Workload>> replicas;
  std::vector<std::unique_ptr<net::Connection>> conns;
  std::vector<std::thread> threads;  // fhdnn-lint: allow(raw-thread)
  replicas.reserve(static_cast<std::size_t>(n_workers));
  conns.reserve(static_cast<std::size_t>(n_workers));
  threads.reserve(static_cast<std::size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    auto [worker_end, server_end] = net::make_loopback_pair();
    replicas.push_back(workload::make_workload(opt));
    conns.push_back(std::move(worker_end));
    workload::Workload& wl = *replicas.back();
    net::Connection& conn = *conns.back();
    threads.emplace_back([&wl, &conn, &opt] {
      fl::WorkerLoop loop(conn, wl.protocol(), wl.config_fingerprint(),
                          opt.protocol);
      loop.handshake();
      (void)loop.serve();
    });
    (void)driver.add_worker(std::move(server_end));
  }
  server->set_round_driver(&driver);
  const auto start = Clock::now();
  const auto history = server->run();
  ServedRun r;
  r.wall_seconds = seconds_since(start);
  driver.shutdown(static_cast<std::int64_t>(history.rounds().size()));
  for (auto& t : threads) t.join();
  r.wire_sent = driver.wire_bytes_sent();
  r.wire_received = driver.wire_bytes_received();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fhdnn;
  bench::init();

  CliFlags flags;
  flags.define_string("protocol", "fedhd", "workload: fedavg | fedhd");
  flags.define_int("rounds", 3, "federated rounds per served run");
  flags.define_int("handshakes", 64, "connections for the handshake bench");
  flags.define_int("max-workers", 4, "sweep 1..this many loopback workers");
  flags.define_int("threads", 0, "worker threads (0 = library default)");
  flags.define_string("json", "BENCH_serving.json", "output artifact path");
  if (!flags.parse(argc, argv)) return 0;

  if (flags.get_int("threads") > 0) {
    parallel::set_num_threads(static_cast<int>(flags.get_int("threads")));
  }
  workload::Options opt;
  opt.protocol = flags.get_string("protocol");
  opt.rounds = static_cast<int>(flags.get_int("rounds"));
  const int handshakes = static_cast<int>(flags.get_int("handshakes"));
  const int max_workers = static_cast<int>(flags.get_int("max-workers"));

  std::cout << "== serving_throughput ==\n";
  bench::print_config_line("protocol=" + opt.protocol +
                           " rounds=" + std::to_string(opt.rounds) +
                           " handshakes=" + std::to_string(handshakes) +
                           " max_workers=" + std::to_string(max_workers) +
                           " threads=" +
                           std::to_string(parallel::num_threads()));

  const std::uint32_t fp =
      workload::make_workload(opt)->config_fingerprint();
  const double hs_wall = bench_handshakes(handshakes, fp, opt.protocol);
  const double conns_per_sec =
      hs_wall > 0.0 ? static_cast<double>(handshakes) / hs_wall : 0.0;
  std::cout << "handshakes=" << handshakes << " wall=" << hs_wall
            << "s connections_per_sec=" << conns_per_sec << "\n\n";

  struct Row {
    int workers;
    ServedRun run;
  };
  std::vector<Row> rows;
  for (int w = 1; w <= max_workers; w *= 2) {
    rows.push_back({w, run_with_workers(w, opt)});
  }

  TextTable table({"workers", "wall_s", "s_per_round", "wire_out_mib",
                   "wire_in_mib"});
  for (const Row& r : rows) {
    table.add_row(
        {TextTable::cell(r.workers), TextTable::cell(r.run.wall_seconds),
         TextTable::cell(r.run.wall_seconds / opt.rounds),
         TextTable::cell(static_cast<double>(r.run.wire_sent) / (1 << 20)),
         TextTable::cell(static_cast<double>(r.run.wire_received) /
                         (1 << 20))});
  }
  table.print(std::cout);
  std::cout << "\n";

  CsvWriter csv(std::cout, {"workers", "wall_seconds", "seconds_per_round",
                            "wire_bytes_sent", "wire_bytes_received"});
  for (const Row& r : rows) {
    csv.add(r.workers)
        .add(r.run.wall_seconds)
        .add(r.run.wall_seconds / opt.rounds)
        .add(static_cast<std::size_t>(r.run.wire_sent))
        .add(static_cast<std::size_t>(r.run.wire_received))
        .end_row();
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"serving_throughput\",\n"
       << "  \"protocol\": \"" << opt.protocol << "\",\n"
       << "  \"rounds\": " << opt.rounds << ",\n"
       << "  \"threads\": " << parallel::num_threads() << ",\n"
       << "  \"handshakes\": " << handshakes << ",\n"
       << "  \"handshake_wall_seconds\": " << hs_wall << ",\n"
       << "  \"connections_per_sec\": " << conns_per_sec << ",\n"
       << "  \"series\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"workers\": " << r.workers
         << ", \"wall_seconds\": " << r.run.wall_seconds
         << ", \"seconds_per_round\": " << r.run.wall_seconds / opt.rounds
         << ", \"wire_bytes_sent\": " << r.run.wire_sent
         << ", \"wire_bytes_received\": " << r.run.wire_received << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  bench::write_json_atomic(flags.get_string("json"), json.str());
  return 0;
}
