// Fig. 8 companion — the *price* of reliability under rising bit-error
// rates: CNN-FL needs a reliable (CRC + ARQ retransmission) uplink, so its
// bytes-on-air and round time grow with the BER; FHDnn transmits uncoded,
// so its traffic and time stay flat and only its accuracy degrades — and
// degrades gracefully (paper §3.5/§4.4, the 1.1 h vs 374.3 h argument).
//
// Both pipelines run deadline-based rounds (fl/engine.hpp) over the same
// data so the simulated clock includes retransmission serialization and
// ARQ backoff; seconds-to-target come from the per-round simulated times.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "channel/arq.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "perf/device_model.hpp"

namespace {

using namespace fhdnn;

/// Simulated seconds until the history reaches `target` accuracy, summing
/// the engine's own per-round simulated durations; negative if never.
double sim_seconds_to_accuracy(const fl::TrainingHistory& hist,
                               double target) {
  double elapsed = 0.0;
  for (const auto& m : hist.rounds()) {
    elapsed += m.simulated_round_seconds;
    if (m.test_accuracy >= target) return elapsed;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init();
  CliFlags flags;
  flags.define_string("dataset", "mnist",
                      "mnist|fashion|cifar (mnist keeps the CNN side fast)");
  flags.define_int("examples", 1000, "dataset size");
  flags.define_int("clients", 10, "number of clients");
  flags.define_int("rounds", 6, "communication rounds");
  flags.define_int("hd-dim", 2000, "hyperdimensional dimensionality d");
  flags.define_int("seed", 42, "experiment seed");
  flags.define_int("max-retries", 8, "ARQ retransmissions per frame");
  flags.define_int("packet-bits", 8192, "ARQ frame payload bits");
  flags.define_double("deadline-factor", 4.0,
                      "round deadline as a multiple of the nominal round "
                      "time (generous so retransmissions, not the cutoff, "
                      "dominate the CNN cost)");
  flags.define_double("target-accuracy", 0.5,
                      "accuracy level for the seconds-to-target column");
  flags.define_bool("skip-cnn", false, "FHDnn only");
  if (!flags.parse(argc, argv)) return 0;

  const std::string dataset = flags.get_string("dataset");
  const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));
  const int rounds = static_cast<int>(flags.get_int("rounds"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double target = flags.get_double("target-accuracy");
  const std::vector<double> bers{0.0, 1e-5, 1e-4, 1e-3, 3e-3};

  print_banner(std::cout, "Fig. 8 companion: the cost of ARQ reliability");
  bench::print_config_line(
      "dataset=" + dataset + " clients=" + std::to_string(n_clients) +
      " rounds=" + std::to_string(rounds) + " d=" +
      std::to_string(flags.get_int("hd-dim")) + " max_retries=" +
      std::to_string(flags.get_int("max-retries")) + " seed=" +
      std::to_string(seed));

  const auto exp = core::make_experiment_data(
      dataset, flags.get_int("examples"), n_clients, core::Distribution::Iid,
      seed);
  const auto params = core::paper_default_params(n_clients, rounds, seed);
  const auto cnn_params = core::cnn_params_for(dataset);
  const auto fhdnn_cfg =
      core::fhdnn_config_for(exp.train, flags.get_int("hd-dim"));
  const auto encoded =
      core::encode_for_fhdnn(fhdnn_cfg, exp.train, exp.parts, exp.test);

  // Both sides share the device and per-round workload; only the compute
  // model (backprop vs forward-only), link rate, and payload size differ.
  fl::TimelineConfig base_timeline;
  base_timeline.workload = perf::ClientWorkload::paper_reference();
  base_timeline.workload.samples =
      std::max<std::uint64_t>(1, exp.train.size() / n_clients);
  base_timeline.workload.epochs =
      static_cast<std::uint64_t>(params.local_epochs);

  channel::ArqConfig arq;
  arq.max_retries = static_cast<int>(flags.get_int("max-retries"));
  arq.packet_bits = static_cast<std::size_t>(flags.get_int("packet-bits"));

  const std::uint64_t cnn_bits =
      core::cnn_update_bytes(cnn_params, exp.train) * 8;
  const std::uint64_t hd_scalars =
      static_cast<std::uint64_t>(encoded.num_classes) *
      static_cast<std::uint64_t>(encoded.hd_dim);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout,
                {"model", "ber", "accuracy", "mbits_on_air", "retransmissions",
                 "residual_errors", "timed_out", "sim_hours",
                 "sim_hours_to_target"});
  TextTable table({"ber", "model", "acc", "Mbit_air", "retx", "sim_h"});

  auto report = [&](const std::string& model, double ber,
                    const fl::TrainingHistory& hist) {
    const double mbits =
        static_cast<double>(hist.total_bits_on_air()) / 1e6;
    const double sim_h = hist.total_simulated_seconds() / 3600.0;
    const double to_target = sim_seconds_to_accuracy(hist, target);
    csv.add(model)
        .add(ber)
        .add(hist.final_accuracy())
        .add(mbits)
        .add(static_cast<std::size_t>(hist.total_retransmissions()))
        .add(static_cast<std::size_t>(hist.total_residual_errors()))
        .add(hist.total_timed_out())
        .add(sim_h)
        .add(to_target >= 0 ? to_target / 3600.0 : -1.0)
        .end_row();
    table.add_row({TextTable::cell(ber), model,
                   TextTable::cell(hist.final_accuracy()),
                   TextTable::cell(mbits),
                   TextTable::cell(
                       static_cast<std::size_t>(hist.total_retransmissions())),
                   TextTable::cell(sim_h)});
  };

  for (const double ber : bers) {
    // FHDnn: uncoded AGC transport, no ARQ — corruption is absorbed.
    channel::HdUplinkConfig uplink;
    if (ber > 0.0) {
      uplink.mode = channel::HdUplinkMode::BitErrors;
      uplink.ber = ber;
    }
    auto hd_params = params;
    hd_params.deadline.enabled = true;
    hd_params.deadline.deadline_factor = flags.get_double("deadline-factor");
    hd_params.deadline.timeline = base_timeline;
    hd_params.deadline.timeline.fhdnn = true;
    hd_params.deadline.timeline.update_bits =
        channel::hd_bits_per_scalar(uplink) * hd_scalars;
    report("fhdnn", ber, core::run_fhdnn_on_encoded(encoded, hd_params,
                                                    uplink));

    if (flags.get_bool("skip-cnn")) continue;

    // CNN: the same BSC, but wrapped in the CRC/ARQ reliability layer the
    // float-state transport needs to survive it.
    const auto inner =
        ber > 0.0 ? channel::make_bit_error(ber) : nullptr;
    const auto reliable = channel::make_reliable(inner.get(), arq);
    auto cnn_fl_params = params;
    cnn_fl_params.deadline.enabled = true;
    cnn_fl_params.deadline.deadline_factor =
        flags.get_double("deadline-factor");
    cnn_fl_params.deadline.timeline = base_timeline;
    cnn_fl_params.deadline.timeline.fhdnn = false;
    cnn_fl_params.deadline.timeline.update_bits = cnn_bits;
    report("cnn+arq", ber,
           core::run_cnn_federated(cnn_params, exp.train, exp.parts, exp.test,
                                   cnn_fl_params, reliable.get()));
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nPaper shape check: cnn+arq Mbit_air/retx/sim_h grow with "
               "the BER (every corrupted frame is retransmitted, up to "
               "max_retries; once retries exhaust, residual errors take its "
               "accuracy down too — raise --max-retries to hold it at the "
               "cost of yet more traffic); fhdnn traffic and time stay flat "
               "at every BER and only its accuracy degrades, gracefully.\n";
  return 0;
}
