// Ablation bench: encoding and transport design choices (DESIGN.md §7).
//
//   1. Encoder family: the paper's random-projection encoder (§3.3) vs the
//      classic ID-level (record-based) encoder, same d, same data — accuracy
//      and encode cost.
//   2. Transport precision: float32 vs AGC B-bit vs binary sign-only
//      transmission of the trained prototype matrix — accuracy vs update
//      size (the binary path is 32x smaller than float and immune to
//      magnitude blowups from bit errors).
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "hdc/binary_model.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/id_level_encoder.hpp"
#include "hdc/quantizer.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  bench::init();
  CliFlags flags;
  flags.define_int("hd-dim", 4000, "hyperdimensional dimensionality d");
  flags.define_int("examples", 780, "ISOLET-like dataset size");
  flags.define_int("levels", 16, "quantization levels for the ID-level encoder");
  flags.define_double("separation", 0.5,
                      "class separation (0.5 = hard operating point where "
                      "design choices become visible)");
  flags.define_int("seed", 42, "experiment seed");
  if (!flags.parse(argc, argv)) return 0;

  const auto d = flags.get_int("hd-dim");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  Rng rng(seed);
  data::IsoletSpec spec;
  spec.n = flags.get_int("examples");
  spec.separation = flags.get_double("separation");
  const auto ds = data::make_isolet_like(spec, rng);
  auto split = data::train_test_split(ds, 0.2, rng);

  print_banner(std::cout, "Ablation: encoder family");
  bench::print_config_line("d=" + std::to_string(d) + " isolet-like n=" +
                           std::to_string(spec.n) + " seed=" +
                           std::to_string(seed));

  struct EncoderResult {
    std::string name;
    double accuracy;
    double encode_ms_per_sample;
    Tensor prototypes;
  };
  std::vector<EncoderResult> results;

  auto evaluate = [&](const std::string& name, auto&& encode) {
    const auto t0 = std::chrono::steady_clock::now();
    const Tensor htr = encode(split.train.x);
    const auto t1 = std::chrono::steady_clock::now();
    const Tensor hte = encode(split.test.x);
    hdc::HdClassifier clf(spec.classes, d);
    clf.bundle(htr, split.train.labels);
    for (int e = 0; e < 2; ++e) clf.refine_epoch(htr, split.train.labels);
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() /
        static_cast<double>(split.train.size());
    results.push_back({name, clf.accuracy(hte, split.test.labels), ms,
                       clf.prototypes()});
  };

  Rng rp_rng = rng.fork("rp");
  hdc::RandomProjectionEncoder rp(spec.dims, d, rp_rng);
  evaluate("random-projection (paper §3.3)",
           [&](const Tensor& x) { return rp.encode(x); });

  Rng il_rng = rng.fork("il");
  hdc::IdLevelEncoder il(spec.dims, d, flags.get_int("levels"), -8.0F, 8.0F,
                         il_rng);
  evaluate("id-level (record-based)",
           [&](const Tensor& x) { return il.encode(x); });

  TextTable t({"encoder", "test_accuracy", "encode_ms_per_sample"});
  for (const auto& r : results) {
    t.add_row({r.name, TextTable::cell(r.accuracy),
               TextTable::cell(r.encode_ms_per_sample)});
  }
  t.print(std::cout);

  print_banner(std::cout, "Ablation: transport precision of the HD update");
  {
    // Start from the random-projection model; re-read the test accuracy
    // after each transport's round trip.
    const Tensor hte = rp.encode(split.test.x);
    const Tensor& protos = results.front().prototypes;
    const auto scalars = static_cast<std::uint64_t>(protos.numel());

    TextTable tt({"transport", "bytes_per_update", "test_accuracy"});
    auto acc_with = [&](const Tensor& p) {
      hdc::HdClassifier clf(spec.classes, d);
      clf.set_prototypes(p);
      return clf.accuracy(hte, split.test.labels);
    };
    tt.add_row({"float32", TextTable::cell(static_cast<std::size_t>(scalars * 4)),
                TextTable::cell(acc_with(protos))});
    for (const int bits : {16, 8, 4}) {
      const hdc::Quantizer q(bits);
      const Tensor back = q.dequantize_rows(q.quantize_rows(protos), d);
      tt.add_row({"AGC " + std::to_string(bits) + "-bit",
                  TextTable::cell(static_cast<std::size_t>(scalars * bits / 8)),
                  TextTable::cell(acc_with(back))});
    }
    tt.add_row({"binary sign (1-bit)",
                TextTable::cell(static_cast<std::size_t>(scalars / 8)),
                TextTable::cell(acc_with(hdc::expand(hdc::binarize(protos))))});
    tt.print(std::cout);
  }

  std::cout << "\nShape check: both encoder families learn the task (the "
               "projection encoder is cheaper per sample at equal d); "
               "accuracy degrades gracefully with transport precision and "
               "the 1-bit sign model stays within a few points of float32 "
               "at 1/32 the traffic.\n";
  return 0;
}
