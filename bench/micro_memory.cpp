// Allocation profile of a CNN training step (the zero-allocation claim).
//
// Runs warmup + measured training steps on the mini-ResNet and reports, per
// step, the heap traffic seen by the counting allocator (alloc_spy) and the
// wall time. The first warmup step pays every buffer and arena allocation —
// that figure is what each step cost before the workspace/_into refactor.
// Steady-state steps must allocate nothing; the reduction factor between the
// two is the headline number. Also emits BENCH_memory.json for CI.
//
// Usage: micro_memory [--steps=N] [--warmup=N] [--batch=N] [--threads=N]
//                     [--json=PATH]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"
#include "util/alloc_spy.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

namespace {

using fhdnn::Rng;
using fhdnn::Shape;
using fhdnn::Tensor;

struct StepSample {
  int step;
  bool warmup;
  double ms;
  std::uint64_t bytes;      // heap bytes requested during the step
  std::uint64_t new_calls;  // operator new calls during the step
};

/// One SGD training step, shaped exactly like fl::local_update's inner loop:
/// arena reset at the batch boundary, forward, loss, backward, step.
double training_step(fhdnn::nn::Sequential& model, fhdnn::nn::Sgd& opt,
                     fhdnn::nn::CrossEntropyLoss& loss, const Tensor& x,
                     const std::vector<std::int64_t>& labels) {
  fhdnn::util::tls_workspace().reset();
  opt.zero_grad();
  const Tensor& logits = model.forward(x);
  const double l = loss.forward(logits, labels);
  model.backward(loss.backward());
  opt.step();
  return l;
}

}  // namespace

int main(int argc, char** argv) {
  fhdnn::bench::init();
  fhdnn::CliFlags flags;
  flags.define_int("steps", 20, "measured steady-state steps");
  flags.define_int("warmup", 2, "warmup steps (first one grows all buffers)");
  flags.define_int("batch", 8, "batch size");
  flags.define_int("threads", 1, "thread-pool width");
  flags.define_string("json", "BENCH_memory.json",
                      "output path for the machine-readable summary");
  if (!flags.parse(argc, argv)) return 0;
  const int steps = static_cast<int>(flags.get_int("steps"));
  const int warmup = std::max(1, static_cast<int>(flags.get_int("warmup")));
  const std::int64_t batch = flags.get_int("batch");
  const int threads = static_cast<int>(flags.get_int("threads"));
  const std::string json_path = flags.get_string("json");

  fhdnn::parallel::set_num_threads(threads);
  fhdnn::print_banner(std::cout, "micro: training-step allocation profile");
  fhdnn::bench::print_config_line(
      "mini_resnet(base=4) on (batch,1,16,16); warmup=" +
      std::to_string(warmup) + " steps=" + std::to_string(steps) +
      " batch=" + std::to_string(batch) +
      " threads=" + std::to_string(threads));

  Rng rng(17);
  auto model = fhdnn::nn::make_mini_resnet(1, 10, 4, rng);
  fhdnn::nn::Sgd opt(*model, {.lr = 0.01F, .momentum = 0.9F});
  fhdnn::nn::CrossEntropyLoss loss;
  const Tensor x = Tensor::randn(Shape{batch, 1, 16, 16}, rng);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(batch));
  for (auto& l : labels) l = rng.randint(0, 9);

  std::vector<StepSample> samples;
  for (int s = 0; s < warmup + steps; ++s) {
    const auto before = fhdnn::util::alloc_spy_snapshot();
    const auto t0 = std::chrono::steady_clock::now();
    (void)training_step(*model, opt, loss, x, labels);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const auto after = fhdnn::util::alloc_spy_snapshot();
    samples.push_back({s, s < warmup, ms, after.bytes - before.bytes,
                       after.count - before.count});
  }

  const StepSample& first = samples.front();  // pays every allocation
  std::uint64_t steady_bytes_max = 0;
  std::uint64_t steady_calls_max = 0;
  std::vector<double> steady_ms;
  for (const auto& s : samples) {
    if (s.warmup) continue;
    steady_bytes_max = std::max(steady_bytes_max, s.bytes);
    steady_calls_max = std::max(steady_calls_max, s.new_calls);
    steady_ms.push_back(s.ms);
  }
  std::sort(steady_ms.begin(), steady_ms.end());
  const double steady_median_ms = steady_ms[steady_ms.size() / 2];
  const double reduction =
      static_cast<double>(first.bytes) /
      static_cast<double>(std::max<std::uint64_t>(steady_bytes_max, 1));
  const auto& ws = fhdnn::util::tls_workspace().stats();

  fhdnn::TextTable table({"phase", "steps", "bytes/step", "new_calls/step",
                          "median_ms"});
  table.add_row({"warmup_first", "1", fhdnn::TextTable::cell(first.bytes),
                 fhdnn::TextTable::cell(first.new_calls),
                 fhdnn::TextTable::cell(first.ms)});
  table.add_row({"steady_state", fhdnn::TextTable::cell(steps),
                 fhdnn::TextTable::cell(steady_bytes_max),
                 fhdnn::TextTable::cell(steady_calls_max),
                 fhdnn::TextTable::cell(steady_median_ms)});
  table.print(std::cout);
  std::cout << "reduction: " << reduction
            << "x bytes/step (warmup first step vs steady-state max)\n"
            << "arena: high_water=" << ws.high_water_bytes
            << "B capacity=" << ws.capacity_bytes
            << "B heap_allocations=" << ws.heap_allocations << "\n\n";

  fhdnn::CsvWriter csv(std::cout,
                       {"step", "phase", "ms", "bytes", "new_calls"});
  for (const auto& s : samples) {
    csv.add(s.step)
        .add(s.warmup ? "warmup" : "steady")
        .add(s.ms)
        .add(static_cast<std::size_t>(s.bytes))
        .add(static_cast<std::size_t>(s.new_calls))
        .end_row();
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"micro_memory\",\n"
       << "  \"model\": \"mini_resnet_base4\",\n"
       << "  \"batch\": " << batch << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"warmup_steps\": " << warmup << ",\n"
       << "  \"measured_steps\": " << steps << ",\n"
       << "  \"first_step_bytes\": " << first.bytes << ",\n"
       << "  \"first_step_ms\": " << first.ms << ",\n"
       << "  \"steady_bytes_per_step_max\": " << steady_bytes_max << ",\n"
       << "  \"steady_new_calls_per_step_max\": " << steady_calls_max << ",\n"
       << "  \"steady_step_ms_median\": " << steady_median_ms << ",\n"
       << "  \"bytes_reduction_factor\": " << reduction << ",\n"
       << "  \"arena_high_water_bytes\": " << ws.high_water_bytes << ",\n"
       << "  \"arena_capacity_bytes\": " << ws.capacity_bytes << ",\n"
       << "  \"arena_heap_allocations\": " << ws.heap_allocations << "\n"
       << "}\n";
  fhdnn::bench::write_json_atomic(json_path, json.str());
  return 0;
}
