// Table 1 — Performance on edge devices (Raspberry Pi 3b, Nvidia Jetson).
//
// Training time and energy for one client's local training, FHDnn vs
// ResNet, from the analytical device model (src/perf). The device constants
// are calibrated to the paper's own measurements under the documented
// reference workload (see perf/device_model.hpp), so the paper's absolute
// numbers are regenerated and the model can extrapolate to other workloads
// (printed as a second table for the scaled-down models in this repo).
#include <iostream>

#include "bench_common.hpp"
#include "perf/device_model.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  bench::init();
  CliFlags flags;
  if (!flags.parse(argc, argv)) return 0;

  print_banner(std::cout, "Table 1: performance on edge devices");

  const auto devices = {perf::DeviceProfile::raspberry_pi_3b(),
                        perf::DeviceProfile::jetson()};
  const auto w = perf::ClientWorkload::paper_reference();
  bench::print_config_line(
      "reference workload: S=" + std::to_string(w.samples) +
      " E=" + std::to_string(w.epochs) + " ResNet-18 fwd=" +
      std::to_string(w.cnn_fwd_macs) + " MACs/sample, HD ops/sample=" +
      std::to_string(w.hd_ops_per_sample));

  struct PaperRow {
    const char* device;
    double t_fhdnn, t_resnet, e_fhdnn, e_resnet;
  };
  const PaperRow paper[] = {
      {"Raspberry Pi", 858.72, 1328.04, 4418.4, 6742.8},
      {"Nvidia Jetson", 15.96, 90.55, 96.17, 497.572},
  };

  TextTable table({"device", "metric", "FHDnn(model)", "ResNet(model)",
                   "FHDnn(paper)", "ResNet(paper)", "speedup(model)"});
  std::cout << "CSV:\n";
  CsvWriter csv(std::cout, {"device", "t_fhdnn_s", "t_resnet_s", "e_fhdnn_J",
                            "e_resnet_J"});
  int i = 0;
  for (const auto& dev : devices) {
    const auto cnn = perf::cnn_local_training(dev, w);
    const auto fhd = perf::fhdnn_local_training(dev, w);
    table.add_row({dev.name, "time (s)", TextTable::cell(fhd.seconds),
                   TextTable::cell(cnn.seconds),
                   TextTable::cell(paper[i].t_fhdnn),
                   TextTable::cell(paper[i].t_resnet),
                   TextTable::cell(cnn.seconds / fhd.seconds)});
    table.add_row({dev.name, "energy (J)", TextTable::cell(fhd.energy_joules),
                   TextTable::cell(cnn.energy_joules),
                   TextTable::cell(paper[i].e_fhdnn),
                   TextTable::cell(paper[i].e_resnet),
                   TextTable::cell(cnn.energy_joules / fhd.energy_joules)});
    csv.add(dev.name)
        .add(fhd.seconds)
        .add(cnn.seconds)
        .add(fhd.energy_joules)
        .add(cnn.energy_joules)
        .end_row();
    ++i;
  }
  std::cout << "\n";
  table.print(std::cout);

  // In-model extrapolation: how costs scale with local data volume and
  // epochs at paper scale (both workloads are linear in E*S, so the
  // FHDnn/ResNet ratio is invariant — the paper's speedup persists at any
  // client data size).
  print_banner(std::cout, "Workload scaling (paper-scale models)");
  TextTable t2({"device", "S", "E", "FHDnn time (s)", "ResNet time (s)",
                "speedup"});
  for (const auto& dev : devices) {
    for (const std::uint64_t s : {100ULL, 500ULL, 2000ULL}) {
      auto scaled = w;
      scaled.samples = s;
      const auto cnn = perf::cnn_local_training(dev, scaled);
      const auto fhd = perf::fhdnn_local_training(dev, scaled);
      t2.add_row({dev.name, TextTable::cell(static_cast<std::size_t>(s)),
                  TextTable::cell(static_cast<int>(scaled.epochs)),
                  TextTable::cell(fhd.seconds), TextTable::cell(cnn.seconds),
                  TextTable::cell(cnn.seconds / fhd.seconds)});
    }
  }
  t2.print(std::cout);

  std::cout << "\nPaper shape check: FHDnn 1.5-6x faster & more energy "
               "efficient; largest gap on the GPU device.\n";
  return 0;
}
