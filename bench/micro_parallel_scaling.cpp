// Thread-scaling microbench: wall-clock speedup of the parallel tensor
// kernels and a full FedAvg round as the pool width grows, plus a
// bit-identity check of every measured result against the serial schedule.
//
// Usage: micro_parallel_scaling [--max-threads=N] [--reps=N]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/fedavg.hpp"
#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using fhdnn::Rng;
using fhdnn::Shape;
using fhdnn::Tensor;

/// Median-of-reps wall time of `fn` in seconds.
template <typename Fn>
double time_median(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    times.push_back(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

template <typename SeqA, typename SeqB>
bool same_bits(const SeqA& a, const SeqB& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

struct FedAvgSetup {
  fhdnn::data::Dataset train, test;
  fhdnn::data::ClientIndices parts;
  fhdnn::fl::FedAvgConfig cfg;

  FedAvgSetup() {
    Rng rng(7);
    auto full = fhdnn::data::synthetic_mnist(600, rng);
    auto split = fhdnn::data::train_test_split(full, 0.2, rng);
    train = std::move(split.train);
    test = std::move(split.test);
    parts = fhdnn::data::partition_iid(train, 8, rng);
    cfg.n_clients = 8;
    cfg.client_fraction = 1.0;  // all 8 clients participate
    cfg.local_epochs = 1;
    cfg.batch_size = 32;
    cfg.rounds = 1;
    cfg.eval_every = 1000;  // keep evaluation out of the measured round
    cfg.seed = 8;
  }

  fhdnn::fl::ModelFactory factory() const {
    return [](Rng& rng) { return fhdnn::nn::make_cnn2(1, 28, 10, rng); };
  }

  std::vector<float> run_round() const {
    fhdnn::fl::FedAvgTrainer trainer(factory(), train, parts, test, cfg);
    (void)trainer.round(1);
    return fhdnn::nn::get_state(trainer.global_model());
  }
};

struct ScalingRow {
  std::string workload;
  int threads;
  double median_ms;
  double speedup;
  bool bit_identical;
};

}  // namespace

int main(int argc, char** argv) {
  fhdnn::bench::init();
  fhdnn::CliFlags flags;
  flags.define_int("max-threads", std::max(4, fhdnn::parallel::num_threads()),
                   "largest pool width to measure (doubling from 1)");
  flags.define_int("reps", 3, "repetitions per timing (median reported)");
  if (!flags.parse(argc, argv)) return 0;
  const int max_threads = static_cast<int>(flags.get_int("max-threads"));
  const int reps = static_cast<int>(flags.get_int("reps"));

  fhdnn::print_banner(std::cout, "micro: parallel_for thread scaling");
  fhdnn::bench::print_config_line(
      "matmul 512x512, FedAvg round (8 clients, cnn2, synthetic MNIST); "
      "reps=" + std::to_string(reps) +
      " max_threads=" + std::to_string(max_threads) +
      " hw_concurrency=" +
      // Reporting only — hardware_concurrency() spawns nothing.
      // fhdnn-lint: allow(raw-thread)
      std::to_string(std::thread::hardware_concurrency()));

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  std::vector<ScalingRow> rows;

  // --- matmul 512x512 ---------------------------------------------------
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{512, 512}, rng);
  const Tensor b = Tensor::randn(Shape{512, 512}, rng);
  fhdnn::parallel::set_num_threads(1);
  const Tensor reference = fhdnn::ops::matmul(a, b);
  double matmul_serial = 0.0;
  for (const int t : thread_counts) {
    fhdnn::parallel::set_num_threads(t);
    Tensor c;
    const double sec = time_median(reps, [&] { c = fhdnn::ops::matmul(a, b); });
    if (t == 1) matmul_serial = sec;
    rows.push_back({"matmul512", t, sec * 1e3, matmul_serial / sec,
                    same_bits(c.data(), reference.data())});
  }

  // --- one FedAvg round -------------------------------------------------
  const FedAvgSetup setup;
  fhdnn::parallel::set_num_threads(1);
  const std::vector<float> ref_state = setup.run_round();
  double round_serial = 0.0;
  for (const int t : thread_counts) {
    fhdnn::parallel::set_num_threads(t);
    std::vector<float> state;
    const double sec = time_median(reps, [&] { state = setup.run_round(); });
    if (t == 1) round_serial = sec;
    rows.push_back({"fedavg_round", t, sec * 1e3, round_serial / sec,
                    same_bits(state, ref_state)});
  }

  fhdnn::TextTable table(
      {"workload", "threads", "median_ms", "speedup", "bit_identical"});
  for (const auto& r : rows) {
    table.add_row({r.workload, fhdnn::TextTable::cell(r.threads),
                   fhdnn::TextTable::cell(r.median_ms),
                   fhdnn::TextTable::cell(r.speedup),
                   r.bit_identical ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\n";
  fhdnn::CsvWriter csv(
      std::cout, {"workload", "threads", "median_ms", "speedup", "bit_identical"});
  for (const auto& r : rows) {
    csv.add(r.workload)
        .add(r.threads)
        .add(r.median_ms)
        .add(r.speedup)
        .add(r.bit_identical ? 1 : 0)
        .end_row();
  }
  std::cout << "note: speedup saturates at the machine's physical core count; "
               "FHDNN_THREADS=1 is the exact serial fallback.\n";
  return 0;
}
