// Fig. 8 — Accuracy of FHDnn vs CNN under unreliable network conditions:
// packet loss, Gaussian noise (AWGN at various SNRs), and bit errors, for
// IID and non-IID data (paper setting: E=2, C=0.2, B=10, CIFAR10).
//
// FHDnn sweeps every channel setting for both distributions (the encoded
// data is built once and reused — the heavy part is feature extraction).
// The CNN baseline covers a representative subset by default because each
// CNN point is a full FedAvg run; pass --cnn-full for every setting, or
// --dataset mnist for a much faster (CNN2) baseline.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace fhdnn;

struct Sweeps {
  std::vector<double> packet_loss{0.001, 0.01, 0.1, 0.2, 0.3};
  std::vector<double> snr_db{5, 10, 15, 20, 25};
  std::vector<double> ber{1e-6, 1e-5, 1e-4, 1e-3};
};

channel::HdUplinkConfig hd_uplink_for(const std::string& kind, double value) {
  channel::HdUplinkConfig cfg;
  if (kind == "packet_loss") {
    cfg.mode = channel::HdUplinkMode::PacketLoss;
    cfg.loss_rate = value;
  } else if (kind == "awgn") {
    cfg.mode = channel::HdUplinkMode::Awgn;
    cfg.snr_db = value;
  } else {
    cfg.mode = channel::HdUplinkMode::BitErrors;
    cfg.ber = value;
  }
  return cfg;
}

std::unique_ptr<channel::Channel> cnn_channel_for(const std::string& kind,
                                                  double value) {
  if (kind == "packet_loss") return channel::make_packet_loss(value, 8192);
  if (kind == "awgn") return channel::make_awgn(value);
  return channel::make_bit_error(value);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init();
  CliFlags flags;
  flags.define_string("dataset", "cifar",
                      "mnist|fashion|cifar (cifar is the paper's Fig. 8 "
                      "setting; mnist makes the CNN baseline much faster)");
  flags.define_int("examples", 1000, "dataset size");
  flags.define_int("clients", 10, "number of clients");
  flags.define_int("rounds", 8, "communication rounds");
  flags.define_int("hd-dim", 2000, "hyperdimensional dimensionality d");
  flags.define_int("seed", 42, "experiment seed");
  flags.define_bool("cnn-full", false,
                    "run the CNN baseline on every channel setting");
  flags.define_bool("skip-cnn", false, "FHDnn only");
  if (!flags.parse(argc, argv)) return 0;

  const std::string dataset = flags.get_string("dataset");
  const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));
  const int rounds = static_cast<int>(flags.get_int("rounds"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const Sweeps sweeps;

  print_banner(std::cout, "Fig. 8: accuracy under unreliable networks");
  bench::print_config_line("dataset=" + dataset + " E=2 C=0.2 B=10 clients=" +
                           std::to_string(n_clients) + " rounds=" +
                           std::to_string(rounds) + " d=" +
                           std::to_string(flags.get_int("hd-dim")) +
                           " seed=" + std::to_string(seed));

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout,
                {"model", "distribution", "channel", "setting", "accuracy"});
  TextTable table({"channel", "setting", "dist", "fhdnn_acc", "cnn_acc"});

  for (const auto dist :
       {core::Distribution::Iid, core::Distribution::NonIid}) {
    const auto exp = core::make_experiment_data(
        dataset, flags.get_int("examples"), n_clients, dist, seed);
    const auto params = core::paper_default_params(n_clients, rounds, seed);
    const auto fhdnn_cfg =
        core::fhdnn_config_for(exp.train, flags.get_int("hd-dim"));
    const auto encoded =
        core::encode_for_fhdnn(fhdnn_cfg, exp.train, exp.parts, exp.test);
    const auto cnn_params = core::cnn_params_for(dataset);

    auto run_point = [&](const std::string& kind, double value) {
      const auto hist = core::run_fhdnn_on_encoded(
          encoded, params, hd_uplink_for(kind, value));
      const double fhdnn_acc = hist.final_accuracy();
      csv.add("fhdnn")
          .add(core::to_string(dist))
          .add(kind)
          .add(value)
          .add(fhdnn_acc)
          .end_row();

      std::optional<double> cnn_acc;
      const bool cnn_here =
          !flags.get_bool("skip-cnn") &&
          (flags.get_bool("cnn-full") ||
           (dist == core::Distribution::Iid &&
            ((kind == "packet_loss" && (value == 0.01 || value == 0.2)) ||
             (kind == "awgn" && (value == 25.0 || value == 10.0)) ||
             (kind == "ber" && value == 1e-5))));
      if (cnn_here) {
        const auto chan = cnn_channel_for(kind, value);
        cnn_acc = core::run_cnn_federated(cnn_params, exp.train, exp.parts,
                                          exp.test, params, chan.get())
                      .final_accuracy();
        csv.add("cnn")
            .add(core::to_string(dist))
            .add(kind)
            .add(value)
            .add(*cnn_acc)
            .end_row();
      }
      table.add_row({kind, TextTable::cell(value), core::to_string(dist),
                     TextTable::cell(fhdnn_acc),
                     cnn_acc ? TextTable::cell(*cnn_acc) : std::string("-")});
    };

    for (const double v : sweeps.packet_loss) run_point("packet_loss", v);
    for (const double v : sweeps.snr_db) run_point("awgn", v);
    for (const double v : sweeps.ber) run_point("ber", v);
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nPaper shape check: FHDnn flat under packet loss (incl. "
               "20%), <=few-point drop under AWGN down to low SNR, and "
               "moderate drop under bit errors (AGC quantizer); the CNN "
               "collapses at 20% loss, low SNR, and any bit-error rate.\n";
  return 0;
}
