// Google-benchmark micro benches for the NN substrate: forward/backward of
// the CNN baselines and FedAvg-style state aggregation. The fwd+bwd /
// fwd-only ratio observed here is the mechanism behind Table 1's FHDnn
// speedup (FHDnn clients never run backward).
#include <benchmark/benchmark.h>

#include "nn/loss.hpp"
#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace {

using namespace fhdnn;

void BM_Cnn2Forward(benchmark::State& state) {
  Rng rng(1);
  auto net = nn::make_cnn2(1, 28, 10, rng);
  net->set_training(false);
  const Tensor x = Tensor::rand(Shape{8, 1, 28, 28}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Cnn2Forward);

void BM_Cnn2ForwardBackward(benchmark::State& state) {
  Rng rng(2);
  auto net = nn::make_cnn2(1, 28, 10, rng);
  const Tensor x = Tensor::rand(Shape{8, 1, 28, 28}, rng);
  const std::vector<std::int64_t> labels{0, 1, 2, 3, 4, 5, 6, 7};
  nn::CrossEntropyLoss loss;
  for (auto _ : state) {
    net->zero_grad();
    const Tensor logits = net->forward(x);
    benchmark::DoNotOptimize(loss.forward(logits, labels));
    benchmark::DoNotOptimize(net->backward(loss.backward()));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Cnn2ForwardBackward);

void BM_MiniResNetForward(benchmark::State& state) {
  const auto width = state.range(0);
  Rng rng(3);
  auto net = nn::make_mini_resnet(3, 10, width, rng);
  net->set_training(false);
  const Tensor x = Tensor::rand(Shape{4, 3, 32, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_MiniResNetForward)->Arg(8)->Arg(16);

void BM_MiniResNetForwardBackward(benchmark::State& state) {
  const auto width = state.range(0);
  Rng rng(4);
  auto net = nn::make_mini_resnet(3, 10, width, rng);
  const Tensor x = Tensor::rand(Shape{4, 3, 32, 32}, rng);
  const std::vector<std::int64_t> labels{0, 1, 2, 3};
  nn::CrossEntropyLoss loss;
  for (auto _ : state) {
    net->zero_grad();
    const Tensor logits = net->forward(x);
    benchmark::DoNotOptimize(loss.forward(logits, labels));
    benchmark::DoNotOptimize(net->backward(loss.backward()));
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_MiniResNetForwardBackward)->Arg(8)->Arg(16);

void BM_StateSerializeRoundTrip(benchmark::State& state) {
  Rng rng(5);
  auto net = nn::make_mini_resnet(3, 10, 8, rng);
  for (auto _ : state) {
    auto s = nn::get_state(*net);
    benchmark::DoNotOptimize(s);
    nn::set_state(*net, s);
  }
  state.SetItemsProcessed(state.iterations() * nn::state_size(*net));
}
BENCHMARK(BM_StateSerializeRoundTrip);

void BM_FedAvgAggregation(benchmark::State& state) {
  // Elementwise weighted average of 10 client states, MiniResNet size.
  Rng rng(6);
  auto net = nn::make_mini_resnet(3, 10, 8, rng);
  const auto n = static_cast<std::size_t>(nn::state_size(*net));
  std::vector<std::vector<float>> states(10, std::vector<float>(n));
  for (auto& s : states) rng.fill_normal(s, 0.0F, 1.0F);
  for (auto _ : state) {
    std::vector<float> agg(n, 0.0F);
    for (const auto& s : states) {
      for (std::size_t i = 0; i < n; ++i) agg[i] += 0.1F * s[i];
    }
    benchmark::DoNotOptimize(agg);
  }
  state.SetItemsProcessed(state.iterations() * n * 10);
}
BENCHMARK(BM_FedAvgAggregation);

}  // namespace

BENCHMARK_MAIN();
