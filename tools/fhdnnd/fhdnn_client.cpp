// fhdnn-client — an fhdnnd worker.
//
// Builds the same golden workload as the server (the hello handshake
// enforces a matching config fingerprint), dials the server, and serves
// rounds through fl::WorkerLoop: reconstruct the protocol state from each
// RoundAssign, train the assigned slots through the exact run_client code
// path, ship the updates back. If the server dies mid-run (kill -9 under
// test, say), serve() returns false and the client reconnects — riding
// out a checkpoint-restored server restart transparently.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <thread>  // fhdnn-lint: allow(raw-thread) — sleep_for only, no spawning

#include "fl/serving.hpp"
#include "net/socket.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "wire/wire.hpp"
#include "workload.hpp"

namespace {

std::uint16_t resolve_port(const fhdnn::CliFlags& flags) {
  using namespace fhdnn;
  if (flags.get_int("port") != 0) {
    return static_cast<std::uint16_t>(flags.get_int("port"));
  }
  // Poll the server's --port-file until it appears (the server writes it
  // atomically after bind, so a successful read is always complete).
  const std::string path = flags.get_string("port-file");
  FHDNN_CHECK(!path.empty(), "fhdnn-client needs --port or --port-file");
  const int timeout_ms =
      static_cast<int>(flags.get_int("connect-timeout-ms"));
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
      long port = 0;
      const int got = std::fscanf(f, "%ld", &port);
      std::fclose(f);
      if (got == 1 && port > 0 && port <= 65535) {
        return static_cast<std::uint16_t>(port);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  FHDNN_CHECK(false, "port file " << path << " did not appear within "
                                  << timeout_ms << "ms");
  return 0;
}

int run(int argc, char** argv) {
  using namespace fhdnn;

  CliFlags flags;
  flags.define_string("protocol", "fedhd", "workload: fedavg | fedhd");
  flags.define_int("rounds", 3, "federated rounds (must match the server)");
  flags.define_string("host", "127.0.0.1", "server address");
  flags.define_int("port", 0, "server port (0 = read --port-file)");
  flags.define_string("port-file", "", "file the server publishes its port to");
  flags.define_int("threads", 0, "worker threads (0 = library default)");
  flags.define_int("connect-timeout-ms", 60000, "dial timeout per attempt");
  flags.define_int("max-reconnects", 100,
                   "give up after this many dropped connections");
  if (!flags.parse(argc, argv)) return 0;

  if (flags.get_int("threads") > 0) {
    parallel::set_num_threads(static_cast<int>(flags.get_int("threads")));
  }

  workload::Options opt;
  opt.protocol = flags.get_string("protocol");
  opt.rounds = static_cast<int>(flags.get_int("rounds"));
  auto wl = workload::make_workload(opt);

  const std::string host = flags.get_string("host");
  const std::uint16_t port = resolve_port(flags);
  const int dial_timeout =
      static_cast<int>(flags.get_int("connect-timeout-ms"));

  std::int64_t served_total = 0;
  for (std::int64_t attempt = 0;
       attempt <= flags.get_int("max-reconnects"); ++attempt) {
    try {
      auto conn = net::connect_tcp(host, port, dial_timeout);
      fl::WorkerLoop loop(*conn, wl->protocol(), wl->config_fingerprint(),
                          opt.protocol);
      loop.handshake();
      const bool shutdown = loop.serve();
      served_total += loop.rounds_served();
      if (shutdown) {
        log_info("fhdnn-client")
            << "shutdown after " << served_total << " rounds served ("
            << loop.shutdown_rounds() << " rounds completed server-side)";
        return 0;
      }
      log_warn("fhdnn-client") << "server connection dropped after "
                               << loop.rounds_served()
                               << " rounds this connection; reconnecting";
    } catch (const net::NetError& e) {
      // Dial races while the server is restarting from its checkpoint can
      // fail in odd ways (a localhost connect with no listener can even
      // self-connect on the ephemeral port and die in the handshake);
      // every such failure is just "server not back yet" — retry.
      log_warn("fhdnn-client") << "attempt failed (" << e.what()
                               << "); retrying";
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    } catch (const wire::WireError& e) {
      log_warn("fhdnn-client") << "attempt failed (" << e.what()
                               << "); retrying";
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  FHDNN_CHECK(false, "fhdnn-client: gave up after "
                         << flags.get_int("max-reconnects") << " reconnects");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "fhdnn-client: " << e.what() << "\n";
    return 1;
  }
}
