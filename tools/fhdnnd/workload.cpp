#include "workload.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "channel/channel.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedhd.hpp"
#include "hdc/encoder.hpp"
#include "nn/resnet.hpp"
#include "util/error.hpp"

namespace fhdnn::workload {

namespace {

void apply_common(const Options& opt, fl::CheckpointConfig& checkpoint,
                  fl::CrashPlan& crash) {
  checkpoint.path = opt.checkpoint_path;
  checkpoint.every_n_events = opt.checkpoint_every_n_events;
  crash.enabled = opt.crash_enabled;
  crash.at_event = opt.crash_at_event;
}

/// The test_engine.cpp FedAvg golden fixture: 4 clients on synthetic
/// MNIST, C=0.75, dropout 0.4, update subsampling 0.5, lossy packet
/// channel.
class FedAvgWorkload final : public Workload {
 public:
  explicit FedAvgWorkload(const Options& opt)
      : uplink_(channel::make_packet_loss(0.2, 1024)) {
    Rng rng(21);
    auto full = data::synthetic_mnist(300, rng);
    auto split = data::train_test_split(full, 0.2, rng);
    train_ = std::move(split.train);
    test_ = std::move(split.test);
    parts_ = data::partition_iid(train_, 4, rng);
    fl::ModelFactory factory = [](Rng& r) {
      return nn::make_cnn2(1, 28, 10, r);
    };
    fl::FedAvgConfig cfg;
    cfg.n_clients = 4;
    cfg.client_fraction = 0.75;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    cfg.rounds = opt.rounds;
    cfg.seed = 22;
    cfg.dropout_prob = 0.4;
    cfg.update_fraction = 0.5;
    apply_common(opt, cfg.checkpoint, cfg.crash);
    trainer_ = std::make_unique<fl::FedAvgTrainer>(factory, train_, parts_,
                                                   test_, cfg, uplink_.get());
  }

  fl::RoundProtocol& protocol() override { return trainer_->protocol(); }
  void set_round_driver(fl::RoundDriver* driver) override {
    trainer_->set_round_driver(driver);
  }
  [[nodiscard]] std::uint32_t config_fingerprint() const override {
    return trainer_->config_fingerprint();
  }
  fl::TrainingHistory run() override { return trainer_->run(); }
  fl::RoundMetrics round(int round_index) override {
    return trainer_->round(round_index);
  }
  void resume(const std::string& path) override { trainer_->resume(path); }
  [[nodiscard]] const fl::TrainingHistory& history() const override {
    return trainer_->history();
  }

 private:
  std::unique_ptr<channel::Channel> uplink_;
  data::Dataset train_;
  data::Dataset test_;
  data::ClientIndices parts_;
  std::unique_ptr<fl::FedAvgTrainer> trainer_;
};

/// The test_engine.cpp FedHd golden fixture: 6 clients on isolet-like
/// data, C=0.5, dropout 0.3, bit-error uplink, AWGN downlink.
class FedHdWorkload final : public Workload {
 public:
  explicit FedHdWorkload(const Options& opt) {
    Rng rng(31);
    data::IsoletSpec spec;
    spec.dims = 32;
    spec.classes = 4;
    spec.n = 400;
    spec.separation = 0.5;
    const auto ds = data::make_isolet_like(spec, rng);
    Rng enc_rng = rng.fork("enc");
    hdc::RandomProjectionEncoder enc(32, 512, enc_rng);
    const auto split = data::train_test_split(ds, 0.2, rng);
    const fl::HdClientData test{enc.encode(split.test.x), split.test.labels};
    const auto parts = data::partition_iid(split.train, 6, rng);
    std::vector<fl::HdClientData> clients;
    for (const auto& part : parts) {
      const auto sub = split.train.subset(part);
      clients.push_back({enc.encode(sub.x), sub.labels});
    }
    fl::FedHdConfig cfg;
    cfg.n_clients = 6;
    cfg.client_fraction = 0.5;
    cfg.local_epochs = 2;
    cfg.rounds = opt.rounds;
    cfg.num_classes = 4;
    cfg.hd_dim = 512;
    cfg.seed = 32;
    cfg.dropout_prob = 0.3;
    cfg.uplink.mode = channel::HdUplinkMode::BitErrors;
    cfg.uplink.ber = 1e-4;
    cfg.downlink.mode = channel::HdUplinkMode::Awgn;
    cfg.downlink.snr_db = 15.0;
    apply_common(opt, cfg.checkpoint, cfg.crash);
    trainer_ = std::make_unique<fl::FedHdTrainer>(std::move(clients), test,
                                                  cfg);
  }

  fl::RoundProtocol& protocol() override { return trainer_->protocol(); }
  void set_round_driver(fl::RoundDriver* driver) override {
    trainer_->set_round_driver(driver);
  }
  [[nodiscard]] std::uint32_t config_fingerprint() const override {
    return trainer_->config_fingerprint();
  }
  fl::TrainingHistory run() override { return trainer_->run(); }
  fl::RoundMetrics round(int round_index) override {
    return trainer_->round(round_index);
  }
  void resume(const std::string& path) override { trainer_->resume(path); }
  [[nodiscard]] const fl::TrainingHistory& history() const override {
    return trainer_->history();
  }

 private:
  std::unique_ptr<fl::FedHdTrainer> trainer_;
};

}  // namespace

std::unique_ptr<Workload> make_workload(const Options& options) {
  if (options.protocol == "fedavg") {
    return std::make_unique<FedAvgWorkload>(options);
  }
  if (options.protocol == "fedhd") {
    return std::make_unique<FedHdWorkload>(options);
  }
  throw Error("unknown workload protocol \"" + options.protocol +
              "\" (expected fedavg or fedhd)");
}

std::string format_history(const fl::TrainingHistory& history) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const auto& m : history.rounds()) {
    out << "round=" << m.round << " acc=" << m.test_accuracy
        << " loss=" << m.train_loss << " clients=" << m.clients
        << " sampled=" << m.sampled << " dropped=" << m.dropped
        << " bytes=" << m.bytes_uplink << " bits=" << m.bits_on_air
        << " flips=" << m.bit_flips << " lost=" << m.packets_lost
        << " retx=" << m.retransmissions << " residual=" << m.residual_errors
        << "\n";
  }
  return out.str();
}

}  // namespace fhdnn::workload
