// fhdnnd — the FHDnn aggregation server.
//
// Listens for fhdnn-client workers, handshakes each against the engine's
// config fingerprint, then drives the configured federated workload with
// every round's client training farmed out over the connections
// (fl/serving.hpp). The model math is identical to the in-process path by
// construction, so the --history-out artifact is byte-comparable to an
// in-process run of the same workload.
//
// Crash consistency: --checkpoint enables the PR 8 snapshot protocol;
// --kill-at-event arms an injected aggregator crash (exits 137, like a
// kill -9). Restarting with --resume picks up from the last durable
// snapshot; workers reconnect and the run finishes with the same history
// an uninterrupted run produces.
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <string>

#include "fl/faults.hpp"
#include "fl/serving.hpp"
#include "net/socket.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/snapshot.hpp"
#include "workload.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace fhdnn;

  CliFlags flags;
  flags.define_string("protocol", "fedhd", "workload: fedavg | fedhd");
  flags.define_int("rounds", 3, "federated rounds to run");
  flags.define_int("workers", 1, "worker connections to wait for");
  flags.define_string("host", "127.0.0.1", "listen address");
  flags.define_int("port", 0, "listen port (0 = ephemeral)");
  flags.define_string("port-file", "",
                      "publish the bound port to this file (atomic write)");
  flags.define_string("checkpoint", "", "snapshot path (empty = disabled)");
  flags.define_int("checkpoint-every", 0,
                   "snapshot every N events (0 = round boundaries)");
  flags.define_bool("resume", false, "restore the checkpoint before running");
  flags.define_int("kill-at-event", 0,
                   "inject an aggregator crash at this 1-based event");
  flags.define_string("history-out", "",
                      "write the hexfloat history to this file");
  flags.define_int("threads", 0, "worker threads (0 = library default)");
  flags.define_int("accept-timeout-ms", 60000,
                   "max wait for all workers to connect");
  if (!flags.parse(argc, argv)) return 0;

  if (flags.get_int("threads") > 0) {
    parallel::set_num_threads(static_cast<int>(flags.get_int("threads")));
  }

  workload::Options opt;
  opt.protocol = flags.get_string("protocol");
  opt.rounds = static_cast<int>(flags.get_int("rounds"));
  opt.checkpoint_path = flags.get_string("checkpoint");
  opt.checkpoint_every_n_events =
      static_cast<std::uint64_t>(flags.get_int("checkpoint-every"));
  opt.crash_enabled = flags.get_int("kill-at-event") > 0;
  opt.crash_at_event = static_cast<std::uint64_t>(flags.get_int("kill-at-event"));
  auto wl = workload::make_workload(opt);
  if (flags.get_bool("resume")) {
    wl->resume(opt.checkpoint_path);
    log_info("fhdnnd") << "resumed from " << opt.checkpoint_path;
  }

  net::TcpListener listener(flags.get_string("host"),
                            static_cast<std::uint16_t>(flags.get_int("port")));
  log_info("fhdnnd") << "listening on " << flags.get_string("host") << ":"
                     << listener.port();
  if (!flags.get_string("port-file").empty()) {
    util::atomic_write_text(flags.get_string("port-file"),
                            std::to_string(listener.port()) + "\n");
  }

  fl::ServerRoundDriver driver(wl->config_fingerprint(), opt.protocol);
  const auto want = static_cast<std::size_t>(flags.get_int("workers"));
  int waited_ms = 0;
  const int accept_timeout = static_cast<int>(flags.get_int("accept-timeout-ms"));
  while (driver.n_workers() < want) {
    auto conn = listener.accept();
    if (!conn) {
      FHDNN_CHECK(waited_ms < accept_timeout,
                  "fhdnnd: only " << driver.n_workers() << "/" << want
                                  << " workers connected within "
                                  << accept_timeout << "ms");
      listener.wait_pending(50);
      waited_ms += 50;
      continue;
    }
    try {
      driver.add_worker(std::move(conn));
    } catch (const std::exception& e) {
      // A worker that fails its handshake (stale binary, port scanner,
      // dial race) must not take the server down; drop it and keep
      // accepting.
      log_warn("fhdnnd") << "rejected connection: " << e.what();
    }
  }
  wl->set_round_driver(&driver);

  fl::TrainingHistory history;
  try {
    history = wl->run();
  } catch (const fl::AggregatorCrash& crash) {
    // Planned kill: die like a kill -9 would — no shutdown frames, no
    // flushes; workers see the connection drop and reconnect to the
    // restarted server.
    log_warn("fhdnnd") << "injected crash at event " << crash.at_event();
    std::_Exit(137);
  }

  if (!flags.get_string("history-out").empty()) {
    util::atomic_write_text(flags.get_string("history-out"),
                            workload::format_history(history));
  }
  driver.shutdown(static_cast<std::int64_t>(history.rounds().size()));
  log_info("fhdnnd") << "done: " << history.rounds().size() << " rounds, "
                     << driver.wire_bytes_sent() << "B out / "
                     << driver.wire_bytes_received() << "B in";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "fhdnnd: " << e.what() << "\n";
    return 1;
  }
}
