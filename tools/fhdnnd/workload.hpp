// Shared golden workloads for the fhdnnd serving binaries and tests.
//
// The server (tools/fhdnnd/fhdnnd.cpp) and every worker
// (tools/fhdnnd/fhdnn_client.cpp) must construct trainers from the EXACT
// same configuration: the hello handshake pins that with the engine's
// config fingerprint, and bit-identical round replay depends on it. This
// library is the single place those configurations live — the same
// fixtures test_engine.cpp pins golden histories for, so a federated run
// served over sockets can be diffed byte-for-byte against the in-process
// goldens.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fl/engine.hpp"
#include "fl/history.hpp"

namespace fhdnn::workload {

struct Options {
  std::string protocol = "fedhd";  ///< "fedavg" | "fedhd"
  int rounds = 3;
  std::string checkpoint_path;  ///< empty disables checkpointing
  std::uint64_t checkpoint_every_n_events = 0;
  bool crash_enabled = false;  ///< injected aggregator kill (server only)
  std::uint64_t crash_at_event = 0;
};

/// Owns one golden trainer plus everything it references (datasets,
/// channel) behind a protocol-agnostic face. Both serving halves use it:
/// the server drives run()/resume(), workers only touch protocol().
class Workload {
 public:
  virtual ~Workload() = default;
  virtual fl::RoundProtocol& protocol() = 0;
  virtual void set_round_driver(fl::RoundDriver* driver) = 0;
  [[nodiscard]] virtual std::uint32_t config_fingerprint() const = 0;
  virtual fl::TrainingHistory run() = 0;
  virtual fl::RoundMetrics round(int round_index) = 0;
  virtual void resume(const std::string& path) = 0;
  [[nodiscard]] virtual const fl::TrainingHistory& history() const = 0;
};

/// Builds the golden FedAvg or FedHd workload. Throws fhdnn::Error on an
/// unknown protocol name.
std::unique_ptr<Workload> make_workload(const Options& options);

/// Deterministic text rendering of a history: one line per round, doubles
/// in hexfloat — byte-comparable across processes and machines. Excludes
/// wall_seconds (the one field outside the determinism contract).
std::string format_history(const fl::TrainingHistory& history);

}  // namespace fhdnn::workload
