// Built-in rule catalog for fhdnn-lint (see lint.hpp for the framework and
// DESIGN.md §10 for the contract each rule protects).
//
// Every rule here guards an invariant that PRs 1–4 paid for and that the
// compiler cannot see:
//   raw-thread          bit-identical histories at any thread count require
//                       all concurrency to flow through util/parallel
//   nondet-rng          reproducibility requires every random draw to come
//                       from seeded fhdnn::Rng streams (util/rng)
//   unordered-container aggregation paths in fl/, hdc/, channel/ must not
//                       iterate containers with unspecified order
//   arena-discipline    `_into` kernels and Module::forward/backward bodies
//                       are the zero-allocation steady state: no Tensor
//                       construction, new, make_unique/shared, or malloc
//   into-alias-doc      every `_into` kernel declaration documents whether
//                       its output may alias an input
//   simd-isolation      CPU intrinsics live only in the per-tier
//                       src/util/simd* translation units; everything else
//                       goes through the util/simd dispatch table
//   pragma-once         headers open with #pragma once
//   include-style       project headers are included with quotes, not <>
//   self-include-first  a .cpp that includes its own header includes it
//                       before anything else
//   sim-clock           src/fl/ runs on the engine's simulated event clock;
//                       wall-clock reads (std::chrono system/steady clocks)
//                       are confined to the documented wall_seconds
//                       measurement sites (suppressed inline)
//   io-isolation        src/fl/ persists state only through the
//                       crash-consistent util/snapshot writer (atomic
//                       commit + CRC framing); raw file writes there could
//                       tear and violate the kill-and-resume contract
//   net-isolation       OS networking (socket/epoll/poll headers, epoll
//                       syscalls) is confined to src/net/ behind the
//                       Connection/Reactor seam; everything else speaks
//                       fhdnn::net
#include "lint.hpp"

#include <array>
#include <cctype>
#include <string>

namespace fhdnn::lint {

namespace {

bool path_starts_with(const SourceFile& f, std::string_view prefix) {
  return f.repo_path().starts_with(prefix);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool line_blank(const SourceFile& f, std::size_t l) {
  return trim(f.raw[l]).empty();
}

/// Flag a fixed token list everywhere except under `exempt` path prefixes.
class TokenBanRule : public Rule {
 public:
  TokenBanRule(std::string name, std::string description,
               std::vector<std::string> tokens,
               std::vector<std::string> exempt_prefixes,
               std::vector<std::string> only_prefixes = {})
      : name_(std::move(name)),
        description_(std::move(description)),
        tokens_(std::move(tokens)),
        exempt_(std::move(exempt_prefixes)),
        only_(std::move(only_prefixes)) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }

  void check(const SourceFile& f, Diagnostics& diags) const override {
    for (const auto& prefix : exempt_) {
      if (path_starts_with(f, prefix)) return;
    }
    if (!only_.empty()) {
      bool in_scope = false;
      for (const auto& prefix : only_) {
        in_scope = in_scope || path_starts_with(f, prefix);
      }
      if (!in_scope) return;
    }
    for (std::size_t l = 0; l < f.code.size(); ++l) {
      for (const auto& token : tokens_) {
        if (has_token(f.code[l], token)) {
          diags.report(name_, static_cast<int>(l) + 1,
                       "'" + token + "' " + why_);
        }
      }
    }
  }

  TokenBanRule& why(std::string text) {
    why_ = std::move(text);
    return *this;
  }

 private:
  std::string name_;
  std::string description_;
  std::vector<std::string> tokens_;
  std::vector<std::string> exempt_;
  std::vector<std::string> only_;
  std::string why_ = "is banned here";
};

// ---- arena-discipline: function-body scanning ----------------------------
// (cursor helpers Pos/skip_space/skip_balanced/ident_at live in lint.cpp,
// shared with the whole-program extractor in graph.cpp)

/// Tokens that may never appear inside an arena-disciplined body.
constexpr std::array<std::string_view, 6> kArenaBanned = {
    "new",  "make_unique", "make_shared", "malloc", "calloc", "realloc"};

class ArenaDisciplineRule : public Rule {
 public:
  std::string_view name() const override { return "arena-discipline"; }
  std::string_view description() const override {
    return "no Tensor construction, new, make_unique/make_shared, or malloc "
           "inside `_into` kernel bodies or nn Module forward/backward "
           "bodies (zero-allocation steady state, DESIGN.md §9)";
  }

  void check(const SourceFile& f, Diagnostics& diags) const override {
    if (!path_starts_with(f, "src/")) return;
    const bool nn_file = path_starts_with(f, "src/nn/");
    for (std::size_t l = 0; l < f.code.size(); ++l) {
      const std::string& code = f.code[l];
      for (std::size_t c = 0; c < code.size(); ++c) {
        const std::string_view tok = ident_at(code, c);
        if (tok.empty()) continue;
        const bool candidate =
            (tok.size() > 5 && tok.ends_with("_into")) ||
            (nn_file && (tok == "forward" || tok == "backward"));
        if (candidate) {
          scan_candidate(f, diags, std::string(tok),
                         Pos{l, c + tok.size()});
        }
        c += tok.size() - 1;
      }
    }
  }

 private:
  /// `p` sits just past a candidate function name. If what follows is a
  /// parameter list and then a `{` body, lint the body.
  void scan_candidate(const SourceFile& f, Diagnostics& diags,
                      const std::string& func, Pos p) const {
    if (!skip_space(f, p) || char_at(f, p) != '(') return;
    if (!skip_balanced(f, p, '(', ')')) return;
    // Walk specifiers (const, noexcept, override, ...) until the body `{`
    // or a declaration terminator.
    while (skip_space(f, p)) {
      const char c = char_at(f, p);
      if (c == '{') break;
      if (c == ';' || c == '=' || c == ':' || c == ',' || c == ')') return;
      if (!advance(f, p)) return;
    }
    if (p.line >= f.code.size() || char_at(f, p) != '{') return;
    const Pos body_start = p;
    Pos body_end = p;
    if (!skip_balanced(f, body_end, '{', '}')) body_end.line = f.code.size();
    lint_body(f, diags, func, body_start, body_end);
  }

  void lint_body(const SourceFile& f, Diagnostics& diags,
                 const std::string& func, Pos from, Pos to) const {
    for (std::size_t l = from.line; l <= to.line && l < f.code.size(); ++l) {
      const std::string& code = f.code[l];
      const std::size_t c0 = (l == from.line) ? from.col : 0;
      const std::size_t c1 = (l == to.line) ? to.col : code.size();
      for (std::size_t c = c0; c < c1 && c < code.size(); ++c) {
        const std::string_view tok = ident_at(code, c);
        if (tok.empty()) continue;
        const bool qualified = c > 0 && code[c - 1] == ':';
        for (const std::string_view banned : kArenaBanned) {
          // `new` only as a raw keyword; the allocator calls also when
          // std::-qualified.
          if (tok == banned && (banned != "new" || !qualified)) {
            diags.report(name(), static_cast<int>(l) + 1,
                         "'" + std::string(tok) + "' inside " + func +
                             "() body breaks the zero-allocation contract");
          }
        }
        if (tok == "Tensor" && !qualified && constructs_tensor(f, l, c + 6)) {
          diags.report(name(), static_cast<int>(l) + 1,
                       "Tensor constructed inside " + func +
                           "() body; use an ensure_shape'd member buffer or "
                           "workspace scratch");
        }
        c += tok.size() - 1;
      }
    }
  }

  /// True when the token following `Tensor` reads as a construction
  /// (`Tensor t(...)`, `Tensor t{...}`, `Tensor(...)`, `Tensor t =`) rather
  /// than a reference/pointer/template mention.
  bool constructs_tensor(const SourceFile& f, std::size_t line,
                         std::size_t col) const {
    Pos p{line, col};
    if (!skip_space(f, p)) return false;
    char c = char_at(f, p);
    if (c == '(' || c == '{') return true;
    const std::string_view next = ident_at(f.code[p.line], p.col);
    if (next.empty()) return false;  // &, *, >, ::, ), ...
    p.col += next.size();
    if (!skip_space(f, p)) return false;
    c = char_at(f, p);
    return c == '(' || c == '{' || c == '=' || c == ';';
  }
};

// ---- into-alias-doc ------------------------------------------------------

class IntoAliasDocRule : public Rule {
 public:
  std::string_view name() const override { return "into-alias-doc"; }
  std::string_view description() const override {
    return "every `_into` kernel declaration in a src/ header documents its "
           "aliasing contract (the word 'alias' in the doc comment of its "
           "declaration group)";
  }

  void check(const SourceFile& f, Diagnostics& diags) const override {
    if (!f.is_header() || !path_starts_with(f, "src/")) return;
    for (std::size_t l = 0; l < f.code.size(); ++l) {
      const std::string& code = f.code[l];
      for (std::size_t c = 0; c < code.size(); ++c) {
        const std::string_view tok = ident_at(code, c);
        if (tok.empty()) continue;
        if (tok.size() > 5 && tok.ends_with("_into")) {
          Pos p{l, c + tok.size()};
          if (skip_space(f, p) && char_at(f, p) == '(' &&
              !group_mentions_alias(f, l)) {
            diags.report(name(), static_cast<int>(l) + 1,
                         std::string(tok) +
                             " declaration lacks an aliasing contract in its "
                             "doc comment (say whether out may alias inputs)");
          }
        }
        c += tok.size() - 1;
      }
    }
  }

 private:
  /// Collect comment text from the declaration's contiguous non-blank group
  /// (up to 24 lines above) plus the declaration line itself.
  bool group_mentions_alias(const SourceFile& f, std::size_t line) const {
    const auto mentions = [&](std::size_t l) {
      const std::string& s = f.comment[l];
      for (std::size_t i = 0; i + 5 <= s.size(); ++i) {
        if ((s[i] == 'a' || s[i] == 'A') && s.compare(i + 1, 4, "lias") == 0) {
          return true;
        }
      }
      return false;
    };
    if (mentions(line)) return true;
    std::size_t l = line;
    for (int steps = 0; l > 0 && steps < 24; ++steps) {
      --l;
      if (line_blank(f, l)) break;
      if (mentions(l)) return true;
    }
    return false;
  }
};

// ---- header / include hygiene --------------------------------------------

class PragmaOnceRule : public Rule {
 public:
  std::string_view name() const override { return "pragma-once"; }
  std::string_view description() const override {
    return "headers start with #pragma once (first non-comment line)";
  }

  void check(const SourceFile& f, Diagnostics& diags) const override {
    if (!f.is_header()) return;
    for (std::size_t l = 0; l < f.code.size(); ++l) {
      const std::string_view code = trim(f.code[l]);
      if (code.empty()) continue;
      if (code != "#pragma once") {
        diags.report(name(), static_cast<int>(l) + 1,
                     "first non-comment line of a header must be "
                     "'#pragma once'");
      }
      return;
    }
    diags.report(name(), 1, "header has no '#pragma once'");
  }
};

constexpr std::array<std::string_view, 13> kProjectPrefixes = {
    "tensor/", "util/", "nn/",       "hdc/",  "fl/",  "channel/",
    "core/",   "data/", "features/", "perf/", "lint", "wire/",
    "net/"};

class IncludeStyleRule : public Rule {
 public:
  std::string_view name() const override { return "include-style"; }
  std::string_view description() const override {
    return "project headers are included with \"quotes\"; angle brackets are "
           "for system and third-party headers";
  }

  void check(const SourceFile& f, Diagnostics& diags) const override {
    for (std::size_t l = 0; l < f.code.size(); ++l) {
      const std::string_view code = trim(f.code[l]);
      if (!code.starts_with("#include")) continue;
      const std::size_t open = code.find('<');
      if (open == std::string_view::npos) continue;
      const std::size_t close = code.find('>', open);
      if (close == std::string_view::npos) continue;
      const std::string_view target = code.substr(open + 1, close - open - 1);
      for (const std::string_view prefix : kProjectPrefixes) {
        if (target.starts_with(prefix)) {
          diags.report(name(), static_cast<int>(l) + 1,
                       "project header <" + std::string(target) +
                           "> must be included with quotes");
        }
      }
    }
  }
};

class SelfIncludeFirstRule : public Rule {
 public:
  std::string_view name() const override { return "self-include-first"; }
  std::string_view description() const override {
    return "a .cpp file that includes its own header includes it before any "
           "other #include";
  }

  void check(const SourceFile& f, Diagnostics& diags) const override {
    if (!f.path.ends_with(".cpp")) return;
    const std::size_t slash = f.path.rfind('/');
    const std::string stem =
        f.path.substr(slash + 1, f.path.size() - slash - 1 - 4);
    bool first = true;
    for (std::size_t l = 0; l < f.code.size(); ++l) {
      const std::string_view code = trim(f.code[l]);
      if (!code.starts_with("#include")) continue;
      // The include target, either "..." (from raw: code blanks literals)
      // or <...>.
      const std::string_view raw = trim(f.raw[l]);
      const std::size_t q0 = raw.find_first_of("\"<");
      if (q0 == std::string_view::npos) continue;
      const std::size_t q1 = raw.find_first_of("\">", q0 + 1);
      if (q1 == std::string_view::npos) continue;
      const std::string_view target = raw.substr(q0 + 1, q1 - q0 - 1);
      const std::size_t tslash = target.rfind('/');
      const std::string_view fname =
          tslash == std::string_view::npos ? target : target.substr(tslash + 1);
      const bool own =
          fname == stem + ".hpp" || fname == stem + ".h";
      if (own && !first) {
        diags.report(name(), static_cast<int>(l) + 1,
                     "own header '" + std::string(target) +
                         "' must be the first #include");
      }
      if (own) return;  // first include is the own header: fine
      first = false;
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;

  {
    auto r = std::make_unique<TokenBanRule>(
        "raw-thread",
        "all concurrency flows through util/parallel (deterministic pool, "
        "bit-identical schedules); no raw std::thread/std::async elsewhere",
        std::vector<std::string>{"std::thread", "std::jthread", "std::async",
                                 "pthread_create"},
        std::vector<std::string>{"src/util/parallel"});
    r->why("spawns threads outside util/parallel; use parallel_for or the "
           "pool so schedules stay deterministic");
    rules.push_back(std::move(r));
  }
  {
    auto r = std::make_unique<TokenBanRule>(
        "nondet-rng",
        "all randomness comes from seeded fhdnn::Rng streams (util/rng); "
        "std::random_device, std:: distributions, srand/std::rand, and "
        "time()-seeding are nondeterministic or platform-dependent",
        std::vector<std::string>{
            "std::random_device", "std::mt19937", "std::mt19937_64",
            "std::minstd_rand", "std::minstd_rand0",
            "std::default_random_engine", "std::uniform_int_distribution",
            "std::uniform_real_distribution", "std::normal_distribution",
            "std::bernoulli_distribution", "std::discrete_distribution",
            "srand", "std::rand"},
        std::vector<std::string>{"src/util/rng"});
    r->why("bypasses the seeded fhdnn::Rng streams; fork a named sub-stream "
           "from the experiment root seed instead");
    rules.push_back(std::move(r));
  }
  {
    auto r = std::make_unique<TokenBanRule>(
        "unordered-container",
        "fl/, hdc/, and channel/ aggregation paths must not use containers "
        "with unspecified iteration order (histories must be bit-identical "
        "across platforms and thread counts)",
        std::vector<std::string>{"std::unordered_map", "std::unordered_set",
                                 "std::unordered_multimap",
                                 "std::unordered_multiset"},
        std::vector<std::string>{},
        std::vector<std::string>{"src/fl/", "src/hdc/", "src/channel/"});
    r->why("has unspecified iteration order; use std::map, a sorted vector, "
           "or index-addressed storage on aggregation paths");
    rules.push_back(std::move(r));
  }
  {
    auto r = std::make_unique<TokenBanRule>(
        "simd-isolation",
        "CPU intrinsics headers (immintrin.h, arm_neon.h, ...) are included "
        "only by the per-tier src/util/simd* translation units; all other "
        "code reaches SIMD through the util/simd kernel table, so the "
        "bit-exactness contract has one enforcement point per tier",
        std::vector<std::string>{"immintrin", "x86intrin", "emmintrin",
                                 "arm_neon", "arm_sve"},
        std::vector<std::string>{"src/util/simd"});
    r->why("pulls CPU intrinsics outside src/util/simd*; add a kernel to the "
           "util/simd dispatch table instead so every tier stays pinned "
           "against the scalar oracle");
    rules.push_back(std::move(r));
  }
  {
    auto r = std::make_unique<TokenBanRule>(
        "sim-clock",
        "federated-round logic in src/fl/ is simulated-time only (the "
        "EventQueue clock); reading wall clocks there breaks the "
        "bit-identical history contract — the sanctioned wall_seconds "
        "measurement sites carry inline allow() suppressions",
        std::vector<std::string>{"std::chrono::steady_clock",
                                 "std::chrono::system_clock",
                                 "std::chrono::high_resolution_clock"},
        std::vector<std::string>{},
        std::vector<std::string>{"src/fl/"});
    r->why("reads a wall clock inside src/fl/; round logic must use the "
           "engine's simulated event clock (fl/events.hpp), except the "
           "documented wall_seconds sites");
    rules.push_back(std::move(r));
  }
  {
    auto r = std::make_unique<TokenBanRule>(
        "io-isolation",
        "src/fl/ writes files only through util/snapshot (SnapshotWriter "
        "commit / atomic_write_file), whose temp+fsync+rename protocol is "
        "what makes checkpoints crash-consistent; raw ofstream/fopen writes "
        "there can be observed torn after a kill",
        std::vector<std::string>{"std::ofstream", "std::fstream", "fopen",
                                 "fwrite"},
        std::vector<std::string>{},
        std::vector<std::string>{"src/fl/"});
    r->why("writes a file from src/fl/ outside util/snapshot; route it "
           "through SnapshotWriter::commit or util::atomic_write_* so a "
           "mid-write kill cannot leave a torn artifact");
    rules.push_back(std::move(r));
  }
  {
    auto r = std::make_unique<TokenBanRule>(
        "net-isolation",
        "OS networking primitives (socket/epoll/poll headers and epoll "
        "syscalls) live only in src/net/, behind the Connection/Reactor "
        "seam; everywhere else — including src/fl/ serving and the fhdnnd "
        "tools — speaks fhdnn::net so the loopback transport, tests, and "
        "portability shims have exactly one integration point",
        std::vector<std::string>{"sys/socket.h", "sys/epoll.h",
                                 "netinet/in.h", "netinet/tcp.h",
                                 "arpa/inet.h", "sys/un.h", "netdb.h",
                                 "poll.h", "epoll_create1", "epoll_ctl",
                                 "epoll_wait", "accept4"},
        std::vector<std::string>{"src/net/"});
    r->why("touches OS networking outside src/net/; go through the "
           "net::Connection / net::Reactor seam instead");
    rules.push_back(std::move(r));
  }
  rules.push_back(std::make_unique<ArenaDisciplineRule>());
  rules.push_back(std::make_unique<IntoAliasDocRule>());
  rules.push_back(std::make_unique<PragmaOnceRule>());
  rules.push_back(std::make_unique<IncludeStyleRule>());
  rules.push_back(std::make_unique<SelfIncludeFirstRule>());
  return rules;
}

}  // namespace fhdnn::lint
