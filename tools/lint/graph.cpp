#include "graph.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <set>
#include <sstream>

namespace fhdnn::lint {

namespace {

// ---- layering manifest ---------------------------------------------------

struct LayerEntry {
  std::string_view module;
  int layer;
};

/// The architecture ordering (ISSUE 10 / DESIGN.md §15):
///   util -> tensor -> {nn, hdc, data, features, perf} -> core -> channel
///   -> fl -> {wire, net} -> fl/serving -> tools
/// tests/, bench/, examples/ are unconstrained consumers.
constexpr std::array<LayerEntry, 14> kLayers = {{
    {"util", 0},
    {"tensor", 1},
    {"nn", 2},
    {"hdc", 2},
    {"data", 2},
    {"features", 2},
    {"perf", 2},
    {"core", 3},
    {"channel", 4},
    {"fl", 5},
    {"wire", 6},
    {"net", 6},
    {"fl/serving", 7},
    {"tools", 8},
}};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// The quoted target of a `#include "..."` line, or empty. Reads the raw
/// line because the stripper blanks string-literal contents in `code`.
std::string_view quoted_include(const SourceFile& f, std::size_t l) {
  const std::string_view code = trim(f.code[l]);
  if (!code.starts_with("#include")) return {};
  const std::string_view raw = trim(f.raw[l]);
  const std::size_t q0 = raw.find('"');
  if (q0 == std::string_view::npos) return {};
  const std::size_t q1 = raw.find('"', q0 + 1);
  if (q1 == std::string_view::npos) return {};
  return raw.substr(q0 + 1, q1 - q0 - 1);
}

std::string dirname_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string()
                                         : std::string(path.substr(0, slash));
}

/// Lexically normalize "a/b/../c" and "a/./b".
std::string normalize(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    const std::string_view part = path.substr(start, end - start);
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    if (end == path.size()) break;
    start = end + 1;
  }
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

// ---- declaration / call / effect extraction ------------------------------

/// Keywords that read as `ident (` but are not calls or definitions.
bool control_keyword(std::string_view tok) {
  static constexpr std::array<std::string_view, 18> kKeywords = {
      "if",     "for",      "while",    "switch",      "return",  "sizeof",
      "catch",  "alignof",  "alignas",  "decltype",    "static_assert",
      "delete", "noexcept", "operator", "static_cast", "const_cast",
      "typeid", "throw"};
  return std::find(kKeywords.begin(), kKeywords.end(), tok) != kKeywords.end();
}

struct EffectToken {
  EffectKind kind;
  std::string_view token;
  bool call_only;  ///< only counts when spelled as a call `token(`
};

/// The effect vocabulary. `call_only` tokens are common words (`time`)
/// that must appear as a call to count; the chrono clock types count on
/// sight because reading `now()` goes through the type name.
constexpr std::array<EffectToken, 16> kEffectTokens = {{
    {EffectKind::kWallClock, "std::chrono::system_clock", false},
    {EffectKind::kWallClock, "std::chrono::steady_clock", false},
    {EffectKind::kWallClock, "std::chrono::high_resolution_clock", false},
    {EffectKind::kWallClock, "time", true},
    {EffectKind::kWallClock, "gettimeofday", true},
    {EffectKind::kWallClock, "clock_gettime", true},
    {EffectKind::kNondet, "std::random_device", false},
    {EffectKind::kNondet, "rand", true},
    {EffectKind::kNondet, "getentropy", true},
    {EffectKind::kNondet, "getrandom", true},
    {EffectKind::kAlloc, "malloc", true},
    {EffectKind::kAlloc, "calloc", true},
    {EffectKind::kAlloc, "realloc", true},
    {EffectKind::kAlloc, "strdup", true},
    {EffectKind::kAlloc, "make_unique", true},
    {EffectKind::kAlloc, "make_shared", true},
}};

/// `p` sits just past a candidate function name. Returns true (and the
/// body span) when what follows is `(params)` then specifiers then a `{`
/// body — the same walk ArenaDisciplineRule uses. Constructors with init
/// lists (`Foo() : a_(1) {`) terminate at ':' and are not extracted; the
/// documented approximation keeps the walk from misreading `a ? b(c) : d`.
bool match_definition(const SourceFile& f, Pos p, Pos& body_begin,
                      Pos& body_end) {
  if (!skip_space(f, p) || char_at(f, p) != '(') return false;
  if (!skip_balanced(f, p, '(', ')')) return false;
  while (skip_space(f, p)) {
    const char c = char_at(f, p);
    if (c == '{') break;
    if (c == ';' || c == '=' || c == ':' || c == ',' || c == ')' || c == '(') {
      return false;
    }
    if (!advance(f, p)) return false;
  }
  if (p.line >= f.code.size() || char_at(f, p) != '{') return false;
  body_begin = p;
  body_end = p;
  if (!skip_balanced(f, body_end, '{', '}')) {
    body_end.line = f.code.size();
    body_end.col = 0;
  }
  return true;
}

/// The `Qual` of `Qual::name` when the token at (l, c) is preceded by `::`;
/// empty otherwise (including template qualifiers like `Foo<T>::`).
std::string qualifier_before(const std::string& code, std::size_t c) {
  if (c < 2 || code[c - 1] != ':' || code[c - 2] != ':') return {};
  std::size_t e = c - 2;
  std::size_t b = e;
  while (b > 0 && ident_char(code[b - 1])) --b;
  if (b == e) return {};
  return code.substr(b, e - b);
}

/// Scan one function body for call sites and direct effects.
void scan_body(const SourceFile& f, Pos from, Pos to, Function& fn) {
  for (std::size_t l = from.line; l <= to.line && l < f.code.size(); ++l) {
    const std::string& code = f.code[l];
    const std::size_t c0 = (l == from.line) ? from.col : 0;
    const std::size_t c1 = (l == to.line) ? to.col : code.size();
    // Token-level effects that need no call syntax (chrono clock types).
    for (const auto& et : kEffectTokens) {
      if (et.call_only) continue;
      std::size_t at = find_token(code, et.token);
      while (at != std::string_view::npos) {
        if (at >= c0 && at < c1) {
          fn.effects.push_back(
              {et.kind, std::string(et.token), static_cast<int>(l) + 1});
        }
        at = find_token(code, et.token, at + 1);
      }
    }
    for (std::size_t c = c0; c < c1 && c < code.size(); ++c) {
      const std::string_view tok = ident_at(code, c);
      if (tok.empty()) continue;
      const bool qualified = c > 0 && code[c - 1] == ':';
      if (tok == "new" && !qualified) {
        fn.effects.push_back(
            {EffectKind::kAlloc, "new", static_cast<int>(l) + 1});
        c += tok.size() - 1;
        continue;
      }
      // A call: identifier directly followed (over whitespace) by '('.
      Pos p{l, c + tok.size()};
      const bool is_call = skip_space(f, p) && char_at(f, p) == '(' &&
                           !control_keyword(tok);
      if (is_call) {
        fn.calls.push_back({std::string(tok), static_cast<int>(l) + 1});
        for (const auto& et : kEffectTokens) {
          if (et.call_only && tok == et.token) {
            fn.effects.push_back(
                {et.kind, std::string(et.token), static_cast<int>(l) + 1});
          }
        }
      }
      c += tok.size() - 1;
    }
  }
}

/// Extract every function definition in `f` into `out`.
void extract_functions(const SourceFile& f, std::size_t file_index,
                       std::vector<Function>& out) {
  for (std::size_t l = 0; l < f.code.size(); ++l) {
    // Preprocessor lines never open definitions (and `#define F(x) ...`
    // would misread as one).
    if (trim(f.code[l]).starts_with("#")) continue;
    for (std::size_t c = 0; c < f.code[l].size(); ++c) {
      // Re-bound every iteration: the resume path below moves `l` past a
      // multi-line body, and a reference captured before the inner loop
      // would keep reading tokens from the line the definition STARTED on.
      const std::string& code = f.code[l];
      const std::string_view tok = ident_at(code, c);
      if (tok.empty()) continue;
      if (control_keyword(tok)) {
        c += tok.size() - 1;
        continue;
      }
      Pos body_begin;
      Pos body_end;
      if (match_definition(f, Pos{l, c + tok.size()}, body_begin, body_end)) {
        Function fn;
        fn.name = std::string(tok);
        fn.qualifier = qualifier_before(code, c);
        fn.file = file_index;
        fn.line = static_cast<int>(l) + 1;
        scan_body(f, body_begin, body_end, fn);
        out.push_back(std::move(fn));
        // Resume exactly at body_end (skip_balanced already stepped past
        // the closing '}') so inner calls are not re-read as top-level
        // definitions.
        if (body_end.line >= f.code.size()) return;
        if (body_end.col == 0) {
          // Body ended at a line boundary: hand the next line back to the
          // outer loop so it gets the preprocessor check too.
          l = body_end.line - 1;
          break;
        }
        l = body_end.line;
        c = body_end.col - 1;  // loop increment lands on body_end.col
        continue;
      }
      c += tok.size() - 1;
    }
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int module_layer(std::string_view module) {
  for (const auto& e : kLayers) {
    if (module == e.module) return e.layer;
  }
  if (module == "tests" || module == "bench" || module == "examples") {
    return kConsumerLayer;
  }
  return -1;
}

std::string module_of(std::string_view repo_path) {
  if (repo_path.starts_with("src/")) {
    const std::string_view rest = repo_path.substr(4);
    if (rest.starts_with("fl/serving.")) return "fl/serving";
    const std::size_t slash = rest.find('/');
    return std::string(slash == std::string_view::npos ? rest
                                                       : rest.substr(0, slash));
  }
  for (const std::string_view top : {"tools", "tests", "bench", "examples"}) {
    if (repo_path.starts_with(top) &&
        (repo_path.size() == top.size() || repo_path[top.size()] == '/')) {
      return std::string(top);
    }
  }
  const std::size_t slash = repo_path.find('/');
  return std::string(
      slash == std::string_view::npos ? repo_path : repo_path.substr(0, slash));
}

std::string_view effect_kind_name(EffectKind kind) {
  switch (kind) {
    case EffectKind::kWallClock: return "wall-clock";
    case EffectKind::kNondet: return "nondeterminism";
    case EffectKind::kAlloc: return "heap allocation";
  }
  return "effect";
}

Program build_program(std::vector<SourceFile> files) {
  Program p;
  p.files = std::move(files);
  p.repo_paths.reserve(p.files.size());
  p.modules.reserve(p.files.size());
  std::map<std::string, std::size_t, std::less<>> by_path;
  for (std::size_t i = 0; i < p.files.size(); ++i) {
    p.repo_paths.emplace_back(p.files[i].repo_path());
    p.modules.push_back(module_of(p.repo_paths[i]));
    by_path.emplace(p.repo_paths[i], i);
  }
  // Include resolution: same-directory first (matches the preprocessor's
  // quoted-include search), then the src/ convention, then repo root.
  p.includes.resize(p.files.size());
  for (std::size_t i = 0; i < p.files.size(); ++i) {
    const SourceFile& f = p.files[i];
    for (std::size_t l = 0; l < f.code.size(); ++l) {
      const std::string_view target = quoted_include(f, l);
      if (target.empty()) continue;
      const std::string dir = dirname_of(p.repo_paths[i]);
      std::size_t resolved = p.files.size();
      for (const std::string& candidate :
           {normalize(dir.empty() ? std::string(target)
                                  : dir + "/" + std::string(target)),
            normalize("src/" + std::string(target)),
            normalize(std::string(target))}) {
        const auto it = by_path.find(candidate);
        if (it != by_path.end()) {
          resolved = it->second;
          break;
        }
      }
      if (resolved < p.files.size() && resolved != i) {
        p.includes[i].push_back({resolved, static_cast<int>(l) + 1});
      }
    }
  }
  // Function extraction: src/ and tools/ only. tests/, bench/, and
  // examples/ hold fixtures and drivers whose names (run, main, ...) would
  // pollute name-linked call resolution without guarding any invariant.
  for (std::size_t i = 0; i < p.files.size(); ++i) {
    const std::string_view rp = p.repo_paths[i];
    if (!rp.starts_with("src/") && !rp.starts_with("tools/")) continue;
    extract_functions(p.files[i], i, p.functions);
  }
  for (std::size_t fi = 0; fi < p.functions.size(); ++fi) {
    p.by_name[p.functions[fi].name].push_back(fi);
  }
  return p;
}

void GraphDiagnostics::report(std::string_view rule, std::size_t file,
                              int line, std::string message) {
  if (file < program_.files.size() &&
      program_.files[file].suppressed(rule, line)) {
    return;
  }
  out_.push_back(Diagnostic{program_.files[file].path, line, std::string(rule),
                            std::move(message)});
}

void lint_program(const Program& program,
                  const std::vector<std::unique_ptr<GraphRule>>& rules,
                  std::vector<Diagnostic>& out) {
  GraphDiagnostics diags(program, out);
  for (const auto& rule : rules) rule->check(program, diags);
}

std::vector<Diagnostic> lint_program_sources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const std::vector<std::unique_ptr<GraphRule>>& rules) {
  std::vector<SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [path, content] : sources) {
    files.push_back(scan_source(path, content));
  }
  std::vector<Diagnostic> out;
  lint_program(build_program(std::move(files)), rules, out);
  return out;
}

std::string graph_dot(const Program& program) {
  // Module-level edge counts, sorted for stable output.
  std::map<std::pair<std::string, std::string>, int> edges;
  std::set<std::string> nodes;
  for (std::size_t i = 0; i < program.files.size(); ++i) {
    nodes.insert(program.modules[i]);
    for (const IncludeRef& inc : program.includes[i]) {
      const std::string& from = program.modules[i];
      const std::string& to = program.modules[inc.target];
      if (from != to) ++edges[{from, to}];
    }
  }
  std::ostringstream os;
  os << "digraph fhdnn_modules {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const auto& n : nodes) {
    const int layer = module_layer(n);
    os << "  \"" << n << "\" [label=\"" << n;
    if (layer >= 0 && layer != kConsumerLayer) os << "\\nlayer " << layer;
    os << "\"];\n";
  }
  for (const auto& [key, count] : edges) {
    const auto& [from, to] = key;
    const int lf = module_layer(from);
    const int lt = module_layer(to);
    const bool bad = lf >= 0 && lf != kConsumerLayer &&
                     (lt < 0 || (lt > lf && lt != kConsumerLayer));
    os << "  \"" << from << "\" -> \"" << to << "\" [label=\"" << count
       << "\"";
    if (bad) os << ", color=red, penwidth=2";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string diagnostics_json(const std::vector<Diagnostic>& diags,
                             std::size_t n_files) {
  std::ostringstream os;
  os << "{\"version\":1,\"files\":" << n_files << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (i) os << ",";
    os << "\n  {\"path\":\"" << json_escape(diags[i].path) << "\","
       << "\"line\":" << diags[i].line << ","
       << "\"rule\":\"" << json_escape(diags[i].rule) << "\","
       << "\"message\":\"" << json_escape(diags[i].message) << "\"}";
  }
  if (!diags.empty()) os << "\n";
  os << "]}\n";
  return os.str();
}

}  // namespace fhdnn::lint
