// fhdnn-lint — repo-specific invariant linter (tools/lint).
//
// The FHDnn codebase promises bit-identical training histories at any
// thread count and a zero-allocation steady state (DESIGN.md §6/§9). Those
// invariants are load-bearing for every headline number in the paper
// reproduction, and nothing in a generic compiler or clang-tidy pass spells
// them out. This linter does: a token/line-level scanner with a pluggable
// rule registry walks src/, tests/, and bench/ and reports violations of
// the repo's own contracts (raw threads outside util/parallel, wall-clock
// seeded RNG outside util/rng, unordered-container use on deterministic
// aggregation paths, heap traffic inside `_into` kernels, missing aliasing
// contracts, include hygiene).
//
// Design constraints, in order:
//   * zero external dependencies — plain C++20 and the standard library;
//   * honest line-level matching, not a parser: comments, string/char
//     literals, and raw strings are blanked before token matching so rule
//     names and fixtures never self-trigger, but no preprocessor or
//     template machinery is emulated;
//   * every rule is suppressible in place with a justification comment:
//       // fhdnn-lint: allow(rule-name)
//     on the offending line or the line directly above it;
//   * no --fix mode, ever. The exit code is the contract: 0 clean,
//     1 violations, 2 usage/IO error. Fixes are reviewed by humans.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fhdnn::lint {

/// One reported violation. `line` is 1-based.
struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// A source file after scanning. Rules see three parallel line arrays:
/// `raw` (verbatim), `code` (comments and string/char-literal contents
/// replaced by spaces, so columns line up), and `comment` (only the comment
/// text of each line, for doc-comment rules).
struct SourceFile {
  std::string path;  ///< forward-slash separated, as passed to the scanner
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comment;

  /// True when `// fhdnn-lint: allow(<rule>)` appears on `line` (1-based)
  /// or on the line directly above it.
  bool suppressed(std::string_view rule, int line) const;

  bool is_header() const;
  /// Path relative to the repo root if a known top-level dir (src/tests/
  /// bench/examples/tools) appears in it, else the path unchanged.
  std::string_view repo_path() const;
};

/// Split `content` into scanned lines (comment/string stripping, raw-string
/// aware). `path` is attached verbatim.
SourceFile scan_source(std::string path, std::string_view content);

/// Sink passed to rules; routes reports through suppression filtering.
class Diagnostics {
 public:
  Diagnostics(const SourceFile& file, std::vector<Diagnostic>& out)
      : file_(file), out_(out) {}

  /// Report a violation of `rule` at 1-based `line` unless an allow()
  /// comment suppresses it there.
  void report(std::string_view rule, int line, std::string message);

 private:
  const SourceFile& file_;
  std::vector<Diagnostic>& out_;
};

/// A lint rule. Stateless; `check` is called once per file.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void check(const SourceFile& file, Diagnostics& diags) const = 0;
};

/// The built-in rule set (see rules.cpp for the catalog).
std::vector<std::unique_ptr<Rule>> default_rules();

/// Run `rules` over an already-scanned file.
void lint_file(const SourceFile& file,
               const std::vector<std::unique_ptr<Rule>>& rules,
               std::vector<Diagnostic>& out);

/// Convenience for tests and embedded fixtures: scan + lint a buffer.
std::vector<Diagnostic> lint_source(
    std::string path, std::string_view content,
    const std::vector<std::unique_ptr<Rule>>& rules);

// ---- token-matching helpers shared by rules (exposed for unit tests) ----

/// True when `token` occurs in `code_line` as a whole token: the character
/// before must not be alphanumeric, '_', or ':' (so `Tensor::rand` does not
/// match `rand`), and the character after must not be alphanumeric or '_'.
bool has_token(std::string_view code_line, std::string_view token);

/// Position of the first whole-token occurrence, or npos.
std::size_t find_token(std::string_view code_line, std::string_view token,
                       std::size_t from = 0);

// ---- cursor helpers over SourceFile::code ----
//
// Shared by the per-file body-scanning rules (rules.cpp) and the
// whole-program declaration/call extractor (graph.cpp). A Pos is a 0-based
// (line, column) cursor into the stripped `code` line array.

struct Pos {
  std::size_t line = 0;
  std::size_t col = 0;
};

/// Advance past whitespace (and line breaks); false at end of file.
bool skip_space(const SourceFile& f, Pos& p);

char char_at(const SourceFile& f, Pos p);

/// Step one column, spilling to the next non-empty line; false at EOF.
bool advance(const SourceFile& f, Pos& p);

/// From an opening delimiter at `p`, move `p` one past its matching closer.
bool skip_balanced(const SourceFile& f, Pos& p, char open, char close);

/// The identifier token starting exactly at column `c` of `code` (empty
/// when `c` is mid-token, a digit start, or not an identifier character).
std::string_view ident_at(const std::string& code, std::size_t c);

}  // namespace fhdnn::lint
