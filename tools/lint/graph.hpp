// fhdnn-lint whole-program analysis phase (DESIGN.md §15).
//
// The per-file rules in rules.cpp catch violations visible inside one
// translation unit; cross-file drift — a TU quietly including a higher
// layer, or a helper three calls deep reaching a wall clock from the round
// loop — needs a program-wide view. This header models exactly as much of
// the program as the stripped-token scanner can honestly extract:
//
//   * an include graph over every scanned file, with `#include "..."`
//     targets resolved against the including file's directory, then src/,
//     then the repo root (system and unresolved includes are ignored);
//   * a module DAG derived from the layering manifest below, with the
//     actual edges dumpable as Graphviz for the CI artifact;
//   * a declaration/call extractor: function definitions (name, optional
//     `Qual::` qualifier, body span) plus, per body, the identifiers
//     called and the direct effects observed (wall-clock reads, nondet
//     sources, heap allocation).
//
// Approximations are deliberate and documented (DESIGN.md §15): linking is
// by unqualified name (over-approximate — a call to `reset` reaches every
// project function named reset), constructors with init lists and
// operators are not extracted, and effects through function pointers or
// std::function are invisible. The rules built on top are therefore tuned
// so over-approximation can only add reachability, never hide it.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace fhdnn::lint {

// ---- layering manifest ---------------------------------------------------

/// Architecture layer of `module` (see module_of); higher layers may
/// include lower ones, same-layer bands may include each other as long as
/// the file-level graph stays acyclic. Returns kConsumerLayer for the
/// unconstrained consumers (tests/, bench/, examples/) and -1 for a module
/// missing from the manifest entirely.
int module_layer(std::string_view module);

inline constexpr int kConsumerLayer = 100;

/// Module key of a repo-relative path: "src/util/rng.hpp" -> "util",
/// "src/fl/serving.cpp" -> "fl/serving" (its own layer above wire/net),
/// "tools/lint/main.cpp" -> "tools", "tests/test_fl.cpp" -> "tests".
std::string module_of(std::string_view repo_path);

// ---- extracted program model ---------------------------------------------

/// One resolved project include: files[from].code line `line` includes
/// files[target].
struct IncludeRef {
  std::size_t target = 0;
  int line = 0;  ///< 1-based include line in the including file
};

enum class EffectKind {
  kWallClock,  ///< std::chrono::*_clock, time(), gettimeofday(), ...
  kNondet,     ///< std::random_device, rand(), getentropy(), ...
  kAlloc,      ///< new, malloc/calloc/realloc, make_unique/make_shared
};

std::string_view effect_kind_name(EffectKind kind);

/// A direct effect observed inside a function body.
struct Effect {
  EffectKind kind;
  std::string token;  ///< the offending token, for the message
  int line = 0;       ///< 1-based
};

/// A call site inside a function body (unqualified callee name).
struct CallSite {
  std::string name;
  int line = 0;
};

/// One extracted function definition.
struct Function {
  std::string name;       ///< unqualified ("round")
  std::string qualifier;  ///< enclosing qualifier when spelled Qual::name
  std::size_t file = 0;   ///< index into Program::files
  int line = 0;           ///< 1-based definition line
  std::vector<CallSite> calls;
  std::vector<Effect> effects;

  std::string display_name() const {
    return qualifier.empty() ? name : qualifier + "::" + name;
  }
};

/// The whole-program view handed to graph rules.
struct Program {
  std::vector<SourceFile> files;
  std::vector<std::string> repo_paths;  ///< files[i].repo_path(), cached
  std::vector<std::string> modules;     ///< module_of(repo_paths[i])
  std::vector<std::vector<IncludeRef>> includes;  ///< per file
  std::vector<Function> functions;      ///< src/ and tools/ only
  /// Unqualified name -> indices into `functions`.
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_name;
};

/// Build the program model from scanned sources (files keep their order).
Program build_program(std::vector<SourceFile> files);

// ---- graph rule framework ------------------------------------------------

/// Suppression-aware sink for whole-program rules; like Diagnostics but
/// reports carry an explicit file index (a cross-file finding is anchored
/// at, and suppressible at, the line it names).
class GraphDiagnostics {
 public:
  GraphDiagnostics(const Program& program, std::vector<Diagnostic>& out)
      : program_(program), out_(out) {}

  void report(std::string_view rule, std::size_t file, int line,
              std::string message);

 private:
  const Program& program_;
  std::vector<Diagnostic>& out_;
};

/// A whole-program rule: sees every file at once.
class GraphRule {
 public:
  virtual ~GraphRule() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void check(const Program& program, GraphDiagnostics& diags) const = 0;
};

/// The built-in whole-program rules: layer-dag, det-effects,
/// include-graph-hygiene (see graph_rules.cpp for the catalog).
std::vector<std::unique_ptr<GraphRule>> default_graph_rules();

/// Run `rules` over an already-built program.
void lint_program(const Program& program,
                  const std::vector<std::unique_ptr<GraphRule>>& rules,
                  std::vector<Diagnostic>& out);

/// Convenience for tests: scan the (path, content) fixtures, build the
/// program, and run `rules`.
std::vector<Diagnostic> lint_program_sources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const std::vector<std::unique_ptr<GraphRule>>& rules);

// ---- CI outputs ----------------------------------------------------------

/// Graphviz dump of the actual module graph: one node per module, one edge
/// per module pair with the file-edge count as label; edges that violate
/// the layering manifest are drawn red.
std::string graph_dot(const Program& program);

/// Machine-readable diagnostics for CI annotations:
/// {"version":1,"files":N,"diagnostics":[{"path":...,"line":...,
///  "rule":...,"message":...},...]}  — one top-level object, stable key
/// order, paths forward-slashed, no trailing newline inside the array.
std::string diagnostics_json(const std::vector<Diagnostic>& diags,
                             std::size_t n_files);

}  // namespace fhdnn::lint
