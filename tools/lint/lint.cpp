#include "lint.hpp"

#include <algorithm>
#include <cctype>

namespace fhdnn::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Cross-line scanner state: the stripper is a tiny state machine fed one
/// line at a time so block comments and raw strings spanning lines work.
struct ScanState {
  bool in_block_comment = false;
  bool in_raw_string = false;
  std::string raw_delim;  ///< the `)delim"` terminator being searched for
};

/// Strip one line: emit `code` (literals/comments blanked to spaces, same
/// length as input) and `comment` (comment text only, blanks elsewhere).
void strip_line(const std::string& line, ScanState& st, std::string& code,
                std::string& comment) {
  const std::size_t n = line.size();
  code.assign(n, ' ');
  comment.assign(n, ' ');
  std::size_t i = 0;
  while (i < n) {
    if (st.in_block_comment) {
      if (line.compare(i, 2, "*/") == 0) {
        st.in_block_comment = false;
        i += 2;
      } else {
        comment[i] = line[i];
        ++i;
      }
      continue;
    }
    if (st.in_raw_string) {
      const std::size_t end = line.find(st.raw_delim, i);
      if (end == std::string::npos) {
        i = n;
      } else {
        i = end + st.raw_delim.size();
        st.in_raw_string = false;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < n && line[i + 1] == '/') {
      for (std::size_t j = i + 2; j < n; ++j) comment[j] = line[j];
      break;
    }
    if (c == '/' && i + 1 < n && line[i + 1] == '*') {
      st.in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == 'R' && i + 1 < n && line[i + 1] == '"' &&
        (i == 0 || !ident_char(line[i - 1]))) {
      // Raw string literal R"delim( ... )delim".
      const std::size_t open = line.find('(', i + 2);
      if (open != std::string::npos) {
        st.raw_delim = ")" + line.substr(i + 2, open - (i + 2)) + "\"";
        st.in_raw_string = true;
        i = open + 1;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      // Skip the literal body; backslash escapes the next character.
      code[i] = c;
      std::size_t j = i + 1;
      while (j < n && line[j] != c) {
        j += (line[j] == '\\' && j + 1 < n) ? 2 : 1;
      }
      if (j < n) code[j] = c;
      i = (j < n) ? j + 1 : n;
      continue;
    }
    code[i] = c;
    ++i;
  }
}

/// Parse the rule list out of a `fhdnn-lint: allow(a, b)` comment; returns
/// false when the line carries no allow() marker.
bool parse_allow(std::string_view comment, std::vector<std::string>& rules) {
  const std::size_t tag = comment.find("fhdnn-lint:");
  if (tag == std::string_view::npos) return false;
  const std::size_t allow = comment.find("allow(", tag);
  if (allow == std::string_view::npos) return false;
  const std::size_t open = allow + 5;
  const std::size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return false;
  std::string name;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')') {
      if (!name.empty()) rules.push_back(name);
      name.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name.push_back(c);
    }
  }
  return true;
}

}  // namespace

namespace {

bool allow_matches(const SourceFile& f, std::string_view rule, std::size_t l) {
  std::vector<std::string> rules;
  return parse_allow(f.comment[l], rules) &&
         std::find(rules.begin(), rules.end(), rule) != rules.end();
}

std::string_view trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string_view(s).substr(b, e - b);
}

/// 0-based first line of the declaration/statement containing 0-based
/// `line`: walk upward while the line above is a code continuation (non
/// blank, not a preprocessor line, and not ending in ';', '{', or '}').
/// Bounded so a pathological unterminated construct stays cheap.
std::size_t statement_start(const SourceFile& f, std::size_t line) {
  std::size_t s = std::min(line, f.code.size() - 1);
  for (int steps = 0; s > 0 && steps < 16; ++steps) {
    const std::string_view above = trimmed(f.code[s - 1]);
    if (above.empty() || above.front() == '#') break;
    const char last = above.back();
    if (last == ';' || last == '{' || last == '}') break;
    --s;
  }
  return s;
}

}  // namespace

bool SourceFile::suppressed(std::string_view rule, int line) const {
  if (line < 1 || comment.empty()) return false;
  const std::size_t l0 = static_cast<std::size_t>(line - 1);
  if (l0 >= comment.size()) return false;
  // Inline on the reported line, or on the line directly above it.
  if (allow_matches(*this, rule, l0)) return true;
  if (l0 >= 1 && allow_matches(*this, rule, l0 - 1)) return true;
  // A declaration spanning multiple lines is covered by an allow() comment
  // above its FIRST line, wherever within the declaration the diagnostic
  // lands (a wrapped parameter list must not strand the suppression).
  const std::size_t s = statement_start(*this, l0);
  if (s < l0 && allow_matches(*this, rule, s)) return true;  // inline, 1st line
  if (s < l0 && s >= 1 && allow_matches(*this, rule, s - 1)) return true;
  return false;
}

bool SourceFile::is_header() const {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

std::string_view SourceFile::repo_path() const {
  const std::string_view p = path;
  for (const std::string_view top :
       {"src/", "tests/", "bench/", "examples/", "tools/"}) {
    if (p.starts_with(top)) return p;
    // Also recognize the top dir mid-path ("/root/repo/src/...").
    const std::size_t at = p.find(std::string("/") + std::string(top));
    if (at != std::string_view::npos) return p.substr(at + 1);
  }
  return p;
}

SourceFile scan_source(std::string path, std::string_view content) {
  SourceFile f;
  f.path = std::move(path);
  std::replace(f.path.begin(), f.path.end(), '\\', '/');
  ScanState st;
  std::size_t start = 0;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    std::string line(content.substr(start, end - start));
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string code;
    std::string comment;
    strip_line(line, st, code, comment);
    f.raw.push_back(std::move(line));
    f.code.push_back(std::move(code));
    f.comment.push_back(std::move(comment));
    if (end == content.size()) break;
    start = end + 1;
  }
  // A lone trailing newline produces one empty final line; keep it — line
  // numbers elsewhere stay 1-based and in range either way.
  return f;
}

void Diagnostics::report(std::string_view rule, int line, std::string message) {
  if (file_.suppressed(rule, line)) return;
  out_.push_back(Diagnostic{file_.path, line, std::string(rule),
                            std::move(message)});
}

void lint_file(const SourceFile& file,
               const std::vector<std::unique_ptr<Rule>>& rules,
               std::vector<Diagnostic>& out) {
  Diagnostics diags(file, out);
  for (const auto& rule : rules) rule->check(file, diags);
}

std::vector<Diagnostic> lint_source(
    std::string path, std::string_view content,
    const std::vector<std::unique_ptr<Rule>>& rules) {
  std::vector<Diagnostic> out;
  lint_file(scan_source(std::move(path), content), rules, out);
  return out;
}

std::size_t find_token(std::string_view code_line, std::string_view token,
                       std::size_t from) {
  if (token.empty()) return std::string_view::npos;
  std::size_t at = code_line.find(token, from);
  while (at != std::string_view::npos) {
    const bool left_ok =
        at == 0 || (!ident_char(code_line[at - 1]) && code_line[at - 1] != ':');
    const std::size_t after = at + token.size();
    const bool right_ok =
        after >= code_line.size() || !ident_char(code_line[after]);
    if (left_ok && right_ok) return at;
    at = code_line.find(token, at + 1);
  }
  return std::string_view::npos;
}

bool has_token(std::string_view code_line, std::string_view token) {
  return find_token(code_line, token) != std::string_view::npos;
}

bool skip_space(const SourceFile& f, Pos& p) {
  while (p.line < f.code.size()) {
    const std::string& s = f.code[p.line];
    while (p.col < s.size() &&
           std::isspace(static_cast<unsigned char>(s[p.col]))) {
      ++p.col;
    }
    if (p.col < s.size()) return true;
    ++p.line;
    p.col = 0;
  }
  return false;
}

char char_at(const SourceFile& f, Pos p) {
  return f.code[p.line][p.col];
}

bool advance(const SourceFile& f, Pos& p) {
  ++p.col;
  while (p.line < f.code.size() && p.col >= f.code[p.line].size()) {
    ++p.line;
    p.col = 0;
  }
  return p.line < f.code.size();
}

bool skip_balanced(const SourceFile& f, Pos& p, char open, char close) {
  int depth = 0;
  do {
    if (!skip_space(f, p)) return false;
    const char c = char_at(f, p);
    if (c == open) ++depth;
    if (c == close) --depth;
    if (!advance(f, p) && depth > 0) return false;
  } while (depth > 0);
  return true;
}

std::string_view ident_at(const std::string& code, std::size_t c) {
  if (c >= code.size() || !ident_char(code[c]) ||
      std::isdigit(static_cast<unsigned char>(code[c])) != 0) {
    return {};
  }
  if (c > 0 && (ident_char(code[c - 1]))) return {};
  std::size_t e = c;
  while (e < code.size() && ident_char(code[e])) ++e;
  return std::string_view(code).substr(c, e - c);
}

}  // namespace fhdnn::lint
