// Whole-program rule catalog for fhdnn-lint (framework in graph.hpp,
// DESIGN.md §15 for the analysis model and its approximations).
//
//   layer-dag             the module graph respects the architecture
//                         ordering util -> tensor -> {nn, hdc, data,
//                         features, perf} -> core -> channel -> fl ->
//                         {wire, net} -> fl/serving -> tools (higher
//                         layers include lower ones; same-layer bands may
//                         interdepend but never cyclically), and the
//                         file-level include graph is acyclic
//   det-effects           no call chain from the RoundEngine client loop
//                         or the WorkerLoop round path reaches wall-clock
//                         or nondeterministic sources, and no chain from
//                         an `_into` kernel reaches heap allocation
//                         outside util/workspace — the transitive upgrade
//                         of sim-clock/nondet-rng/arena-discipline
//   include-graph-hygiene headers included but unused-by-symbol, and
//                         TU-private headers (detail/, *_impl, *_private)
//                         included from outside their module
#include "graph.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace fhdnn::lint {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// ---- layer-dag -----------------------------------------------------------

class LayerDagRule : public GraphRule {
 public:
  std::string_view name() const override { return "layer-dag"; }
  std::string_view description() const override {
    return "[whole-program] module includes respect the architecture "
           "ordering util -> tensor -> {nn,hdc,data,features,perf} -> core "
           "-> channel -> fl -> {wire,net} -> fl/serving -> tools, and the "
           "file-level include graph is acyclic";
  }

  void check(const Program& p, GraphDiagnostics& diags) const override {
    check_layering(p, diags);
    check_cycles(p, diags);
  }

 private:
  void check_layering(const Program& p, GraphDiagnostics& diags) const {
    for (std::size_t i = 0; i < p.files.size(); ++i) {
      const std::string& from = p.modules[i];
      const int lf = module_layer(from);
      if (lf == kConsumerLayer) continue;  // tests/bench/examples
      for (const IncludeRef& inc : p.includes[i]) {
        const std::string& to = p.modules[inc.target];
        if (from == to) continue;
        const int lt = module_layer(to);
        if (lf < 0) {
          diags.report(name(), i, inc.line,
                       "module '" + from +
                           "' is not in the layering manifest; add it to "
                           "kLayers in tools/lint/graph.cpp");
          continue;
        }
        if (lt < 0) {
          diags.report(name(), i, inc.line,
                       "includes module '" + to +
                           "' which is not in the layering manifest");
          continue;
        }
        if (lt == kConsumerLayer || lt > lf) {
          diags.report(
              name(), i, inc.line,
              "layering violation: '" + from + "' (layer " +
                  std::to_string(lf) + ") may not include '" + to +
                  "' (layer " + std::to_string(lt) +
                  "); the architecture ordering flows util -> ... -> tools");
        }
      }
    }
  }

  void check_cycles(const Program& p, GraphDiagnostics& diags) const {
    // Iterative DFS over the file-level include graph; a back edge to a
    // node on the current stack closes a cycle. Each cycle is reported
    // once, at the include line that closes it.
    enum : unsigned char { kWhite, kGrey, kBlack };
    std::vector<unsigned char> color(p.files.size(), kWhite);
    std::vector<std::size_t> parent(p.files.size(), SIZE_MAX);
    for (std::size_t root = 0; root < p.files.size(); ++root) {
      if (color[root] != kWhite) continue;
      // Stack of (node, next-edge-index).
      std::vector<std::pair<std::size_t, std::size_t>> stack;
      stack.emplace_back(root, 0);
      color[root] = kGrey;
      while (!stack.empty()) {
        auto& [node, edge] = stack.back();
        if (edge >= p.includes[node].size()) {
          color[node] = kBlack;
          stack.pop_back();
          continue;
        }
        const IncludeRef inc = p.includes[node][edge++];
        if (color[inc.target] == kGrey) {
          // Walk the stack to spell the cycle path.
          std::string cycle = p.repo_paths[inc.target];
          bool in_cycle = false;
          for (const auto& [n, unused_e] : stack) {
            (void)unused_e;
            if (n == inc.target) in_cycle = true;
            if (in_cycle && n != inc.target) {
              cycle += " -> " + p.repo_paths[n];
            }
          }
          cycle += " -> " + p.repo_paths[inc.target];
          diags.report(name(), node, inc.line,
                       "include cycle: " + cycle);
        } else if (color[inc.target] == kWhite) {
          color[inc.target] = kGrey;
          parent[inc.target] = node;
          stack.emplace_back(inc.target, 0);
        }
      }
    }
  }
};

// ---- det-effects ---------------------------------------------------------

/// A root family: which definitions seed the traversal and which effect
/// kinds are forbidden along every chain from them.
struct RootFamily {
  std::string_view label;
  std::vector<EffectKind> banned;
  std::vector<std::size_t> roots;  ///< indices into Program::functions
};

class DetEffectsRule : public GraphRule {
 public:
  std::string_view name() const override { return "det-effects"; }
  std::string_view description() const override {
    return "[whole-program] transitive effect check: call chains from the "
           "RoundEngine client loop / WorkerLoop round path must not reach "
           "wall-clock or nondeterministic sources, and chains from `_into` "
           "kernels must not reach heap allocation outside util/workspace";
  }

  void check(const Program& p, GraphDiagnostics& diags) const override {
    std::vector<RootFamily> families = collect_roots(p);
    // Dedup across families: one (file, line, effect token) is one finding
    // even when several roots reach it; the first (shortest) chain wins.
    std::set<std::tuple<std::size_t, int, std::string>> reported;
    for (RootFamily& fam : families) {
      traverse(p, fam, diags, reported);
    }
  }

 private:
  static bool is_round_root(const Function& fn) {
    // The RoundEngine client loop and everything the server/worker round
    // path runs per round.
    if (fn.name == "run_client") return true;
    if (fn.qualifier == "RoundEngine" && (fn.name == "round" || fn.name == "run")) {
      return true;
    }
    if (fn.qualifier == "WorkerLoop" &&
        (fn.name == "run" || fn.name == "serve_round")) {
      return true;
    }
    if ((fn.qualifier == "LocalRoundDriver" ||
         fn.qualifier == "ServerRoundDriver") &&
        fn.name == "drive") {
      return true;
    }
    return false;
  }

  std::vector<RootFamily> collect_roots(const Program& p) const {
    RootFamily round{"round path",
                     {EffectKind::kWallClock, EffectKind::kNondet},
                     {}};
    RootFamily kernel{"_into kernel",
                      {EffectKind::kWallClock, EffectKind::kNondet,
                       EffectKind::kAlloc},
                      {}};
    for (std::size_t fi = 0; fi < p.functions.size(); ++fi) {
      const Function& fn = p.functions[fi];
      const std::string_view rp = p.repo_paths[fn.file];
      if (!rp.starts_with("src/")) continue;
      if (is_round_root(fn)) round.roots.push_back(fi);
      if (fn.name.size() > 5 && fn.name.ends_with("_into")) {
        kernel.roots.push_back(fi);
      }
    }
    return {std::move(round), std::move(kernel)};
  }

  /// Allocation inside util/workspace is the sanctioned arena growth path.
  static bool alloc_exempt(const Program& p, const Function& fn) {
    return p.repo_paths[fn.file].starts_with("src/util/workspace");
  }

  void traverse(
      const Program& p, const RootFamily& fam, GraphDiagnostics& diags,
      std::set<std::tuple<std::size_t, int, std::string>>& reported) const {
    // BFS from every root at once; predecessor links reconstruct one
    // shortest chain per reached function for the message.
    std::vector<int> pred(p.functions.size(), -2);  // -2 unvisited, -1 root
    std::deque<std::size_t> queue;
    for (const std::size_t r : fam.roots) {
      if (pred[r] == -2) {
        pred[r] = -1;
        queue.push_back(r);
      }
    }
    while (!queue.empty()) {
      const std::size_t fi = queue.front();
      queue.pop_front();
      const Function& fn = p.functions[fi];
      for (const Effect& e : fn.effects) {
        if (std::find(fam.banned.begin(), fam.banned.end(), e.kind) ==
            fam.banned.end()) {
          continue;
        }
        if (e.kind == EffectKind::kAlloc && alloc_exempt(p, fn)) continue;
        const auto key = std::make_tuple(fn.file, e.line, e.token);
        if (!reported.insert(key).second) continue;
        diags.report(name(), fn.file, e.line,
                     std::string(effect_kind_name(e.kind)) + " ('" + e.token +
                         "') reachable from " + std::string(fam.label) +
                         ": " + chain(p, pred, fi));
      }
      for (const CallSite& call : fn.calls) {
        const auto it = p.by_name.find(call.name);
        if (it == p.by_name.end()) continue;
        for (const std::size_t callee : it->second) {
          if (pred[callee] == -2) {
            pred[callee] = static_cast<int>(fi);
            queue.push_back(callee);
          }
        }
      }
    }
  }

  static std::string chain(const Program& p, const std::vector<int>& pred,
                           std::size_t fi) {
    std::vector<std::string> names;
    for (int cur = static_cast<int>(fi); cur >= 0; cur = pred[cur]) {
      names.push_back(p.functions[cur].display_name());
      if (names.size() > 12) {
        names.push_back("...");
        break;
      }
    }
    std::reverse(names.begin(), names.end());
    std::string out;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) out += " -> ";
      out += names[i];
    }
    return out;
  }
};

// ---- include-graph-hygiene -----------------------------------------------

class IncludeGraphHygieneRule : public GraphRule {
 public:
  std::string_view name() const override { return "include-graph-hygiene"; }
  std::string_view description() const override {
    return "[whole-program] project headers included but unused-by-symbol, "
           "and TU-private headers (detail/ dirs, *_impl / *_private "
           "stems) included from outside their module";
  }

  void check(const Program& p, GraphDiagnostics& diags) const override {
    // Exported-name sets per header, built lazily.
    std::vector<std::vector<std::string>> exported(p.files.size());
    std::vector<char> built(p.files.size(), 0);
    for (std::size_t i = 0; i < p.files.size(); ++i) {
      for (const IncludeRef& inc : p.includes[i]) {
        const std::string& hpath = p.repo_paths[inc.target];
        if (!p.files[inc.target].is_header()) continue;
        check_private(p, diags, i, inc, hpath);
        check_unused(p, diags, i, inc, exported, built);
      }
    }
  }

 private:
  static bool tu_private(std::string_view hpath) {
    if (hpath.find("/detail/") != std::string_view::npos) return true;
    const std::size_t slash = hpath.rfind('/');
    std::string_view stem =
        slash == std::string_view::npos ? hpath : hpath.substr(slash + 1);
    const std::size_t dot = stem.rfind('.');
    if (dot != std::string_view::npos) stem = stem.substr(0, dot);
    return stem.ends_with("_impl") || stem.ends_with("_private");
  }

  void check_private(const Program& p, GraphDiagnostics& diags, std::size_t i,
                     const IncludeRef& inc, const std::string& hpath) const {
    if (!tu_private(hpath)) return;
    if (p.modules[i] == p.modules[inc.target]) return;
    diags.report(name(), i, inc.line,
                 "TU-private header '" + hpath + "' (module '" +
                     p.modules[inc.target] +
                     "') included from module '" + p.modules[i] +
                     "'; private headers never cross a module boundary");
  }

  void check_unused(const Program& p, GraphDiagnostics& diags, std::size_t i,
                    const IncludeRef& inc,
                    std::vector<std::vector<std::string>>& exported,
                    std::vector<char>& built) const {
    // A .cpp including its own header is the interface export, not a use.
    const std::string& fpath = p.repo_paths[i];
    const std::string& hpath = p.repo_paths[inc.target];
    if (own_header(fpath, hpath)) return;
    if (!built[inc.target]) {
      exported[inc.target] = exported_names(p, inc.target);
      built[inc.target] = 1;
    }
    const std::vector<std::string>& names = exported[inc.target];
    // No extractable symbols (umbrella headers, pure-macro headers beyond
    // #define, operator-only headers): stay silent rather than guess.
    if (names.empty()) return;
    for (const std::string& n : names) {
      for (const std::string& line : p.files[i].code) {
        if (uses_token(line, n)) return;  // used
      }
    }
    diags.report(name(), i, inc.line,
                 "header '" + hpath + "' is included but none of its " +
                     std::to_string(names.size()) +
                     " declared symbols are used in this file");
  }

  /// Whole-token occurrence that, unlike has_token, accepts qualified
  /// spellings: `nn::ResNetHD` is a use of ResNetHD.
  static bool uses_token(std::string_view code_line, std::string_view token) {
    std::size_t at = code_line.find(token);
    while (at != std::string_view::npos) {
      const char before = at == 0 ? ' ' : code_line[at - 1];
      const std::size_t after = at + token.size();
      const bool left_ok =
          std::isalnum(static_cast<unsigned char>(before)) == 0 &&
          before != '_';
      const bool right_ok =
          after >= code_line.size() ||
          (std::isalnum(static_cast<unsigned char>(code_line[after])) == 0 &&
           code_line[after] != '_');
      if (left_ok && right_ok) return true;
      at = code_line.find(token, at + 1);
    }
    return false;
  }

  static bool own_header(std::string_view cpp, std::string_view hpp) {
    if (!cpp.ends_with(".cpp")) return false;
    const auto stem = [](std::string_view s) {
      const std::size_t slash = s.rfind('/');
      if (slash != std::string_view::npos) s = s.substr(slash + 1);
      const std::size_t dot = s.rfind('.');
      return dot == std::string_view::npos ? s : s.substr(0, dot);
    };
    return stem(cpp) == stem(hpp);
  }

  /// Names a header exports, token-extracted: type names after
  /// class/struct/enum/union, using aliases, #define names, and function
  /// (incl. member) names spelled `ident(` at any nesting. Deliberately
  /// over-extracts — a name that is really a call inside an inline body
  /// only makes the "unused" verdict harder to reach, never easier.
  static std::vector<std::string> exported_names(const Program& p,
                                                 std::size_t h) {
    std::set<std::string> names;
    bool has_operator = false;
    const SourceFile& f = p.files[h];
    for (std::size_t l = 0; l < f.code.size(); ++l) {
      const std::string& code = f.code[l];
      const std::string_view t = trim(code);
      if (t.starts_with("#define")) {
        Pos q{l, code.find("#define") + 7};
        if (skip_space(f, q) && q.line == l) {
          const std::string_view n = ident_at(code, q.col);
          if (!n.empty()) names.insert(std::string(n));
        }
        continue;
      }
      for (std::size_t c = 0; c < code.size(); ++c) {
        const std::string_view tok = ident_at(code, c);
        if (tok.empty()) continue;
        if (tok == "operator") has_operator = true;
        if (tok == "class" || tok == "struct" || tok == "enum" ||
            tok == "union" || tok == "using" || tok == "namespace" ||
            tok == "typename" || tok == "concept") {
          Pos q{l, c + tok.size()};
          if (skip_space(f, q)) {
            std::string_view n = ident_at(f.code[q.line], q.col);
            if (n == "class" || n == "struct") {  // enum class X
              Pos q2{q.line, q.col + n.size()};
              if (skip_space(f, q2)) n = ident_at(f.code[q2.line], q2.col);
            }
            if (!n.empty() && tok != "namespace" && tok != "typename") {
              names.insert(std::string(n));
            }
          }
          c += tok.size() - 1;
          continue;
        }
        // Function-ish: ident followed by '(' (declaration, definition, or
        // inline-body call — over-extraction is the safe direction here).
        Pos q{l, c + tok.size()};
        if (skip_space(f, q) && char_at(f, q) == '(') {
          names.insert(std::string(tok));
        } else if (skip_space(f, q) && char_at(f, q) == '=') {
          // `constexpr int kFoo = ...`, `using X = ...` handled above;
          // namespace-scope constants matter for hygiene checks.
          names.insert(std::string(tok));
        }
        c += tok.size() - 1;
      }
    }
    // Headers exporting operators cannot be token-matched for use; report
    // nothing rather than false positives.
    if (has_operator) return {};
    // Drop noise words that appear in nearly every file and would mark any
    // header as "used".
    static constexpr std::array<std::string_view, 14> kNoise = {
        "if", "for", "while", "return", "const", "void", "int", "bool",
        "auto", "size_t", "std", "size", "begin", "end"};
    std::vector<std::string> out;
    for (const std::string& n : names) {
      if (std::find(kNoise.begin(), kNoise.end(), n) == kNoise.end()) {
        out.push_back(n);
      }
    }
    return out;
  }
};

}  // namespace

std::vector<std::unique_ptr<GraphRule>> default_graph_rules() {
  std::vector<std::unique_ptr<GraphRule>> rules;
  rules.push_back(std::make_unique<LayerDagRule>());
  rules.push_back(std::make_unique<DetEffectsRule>());
  rules.push_back(std::make_unique<IncludeGraphHygieneRule>());
  return rules;
}

}  // namespace fhdnn::lint
