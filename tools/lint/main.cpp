// fhdnn-lint CLI.
//
// Usage: fhdnn-lint [--rules=a,b] [--list-rules] [--quiet] [--json]
//                   [--graph-dot=FILE] <path>...
//
// Paths may be files or directories (walked recursively for .hpp/.h/.cpp).
// Two phases run over the collected set: the per-file rules (rules.cpp),
// then the whole-program rules (graph_rules.cpp: layer-dag, det-effects,
// include-graph-hygiene) over the include/call graph of everything
// scanned. --json emits machine-readable diagnostics for CI annotations;
// --graph-dot dumps the actual module graph as Graphviz.
// Exit codes are the contract: 0 clean, 1 violations found, 2 usage or I/O
// error. There is deliberately no --fix.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph.hpp"
#include "lint.hpp"

namespace {

namespace fs = std::filesystem;
using fhdnn::lint::Diagnostic;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp";
}

/// Collect files under `root` in sorted order so output (and therefore CI
/// diffs) is stable across platforms and filesystems.
bool collect(const fs::path& root, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (lintable(root)) out.push_back(root);
    return true;
  }
  if (!fs::is_directory(root, ec)) {
    std::cerr << "fhdnn-lint: cannot read " << root.string() << "\n";
    return false;
  }
  std::vector<fs::path> found;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec) && lintable(it->path())) {
      found.push_back(it->path());
    }
  }
  std::sort(found.begin(), found.end());
  out.insert(out.end(), found.begin(), found.end());
  return true;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int usage(std::ostream& os, int code) {
  os << "usage: fhdnn-lint [--rules=a,b] [--list-rules] [--quiet] [--json]\n"
     << "                  [--graph-dot=FILE] <path>...\n"
     << "  --rules=a,b      run only the named rules (per-file or "
        "whole-program)\n"
     << "  --list-rules     print the rule catalog and exit\n"
     << "  --quiet          suppress the summary line\n"
     << "  --json           machine-readable diagnostics on stdout\n"
     << "  --graph-dot=FILE write the module include graph as Graphviz\n"
     << "exit codes: 0 clean, 1 violations, 2 usage/IO error\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> rule_filter;
  std::vector<fs::path> roots;
  bool list_rules = false;
  bool quiet = false;
  bool json = false;
  std::string graph_dot_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.starts_with("--graph-dot=")) {
      graph_dot_path = arg.substr(12);
    } else if (arg.starts_with("--rules=")) {
      rule_filter = split_csv(arg.substr(8));
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg.starts_with("-")) {
      std::cerr << "fhdnn-lint: unknown option " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      roots.emplace_back(arg);
    }
  }

  auto rules = fhdnn::lint::default_rules();
  auto graph_rules = fhdnn::lint::default_graph_rules();
  if (!rule_filter.empty()) {
    for (const auto& name : rule_filter) {
      const bool known =
          std::any_of(rules.begin(), rules.end(),
                      [&](const auto& r) { return r->name() == name; }) ||
          std::any_of(graph_rules.begin(), graph_rules.end(),
                      [&](const auto& r) { return r->name() == name; });
      if (!known) {
        std::cerr << "fhdnn-lint: unknown rule '" << name << "'\n";
        return 2;
      }
    }
    std::erase_if(rules, [&](const auto& r) {
      return std::find(rule_filter.begin(), rule_filter.end(), r->name()) ==
             rule_filter.end();
    });
    std::erase_if(graph_rules, [&](const auto& r) {
      return std::find(rule_filter.begin(), rule_filter.end(), r->name()) ==
             rule_filter.end();
    });
  }

  if (list_rules) {
    for (const auto& r : rules) {
      std::cout << r->name() << "\n    " << r->description() << "\n";
    }
    for (const auto& r : graph_rules) {
      std::cout << r->name() << "\n    " << r->description() << "\n";
    }
    return 0;
  }
  if (roots.empty()) return usage(std::cerr, 2);

  std::vector<fs::path> files;
  for (const auto& root : roots) {
    if (!collect(root, files)) return 2;
  }

  // Phase 1: per-file rules, streaming over the scanned set; the scanned
  // sources are kept for the whole-program phase.
  std::vector<fhdnn::lint::SourceFile> sources;
  sources.reserve(files.size());
  std::vector<Diagnostic> diags;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "fhdnn-lint: cannot open " << file.string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back(
        fhdnn::lint::scan_source(file.generic_string(), buf.str()));
    fhdnn::lint::lint_file(sources.back(), rules, diags);
  }

  // Phase 2: whole-program rules over the include/call graph.
  if (!graph_rules.empty() || !graph_dot_path.empty()) {
    const fhdnn::lint::Program program =
        fhdnn::lint::build_program(std::move(sources));
    fhdnn::lint::lint_program(program, graph_rules, diags);
    if (!graph_dot_path.empty()) {
      std::ofstream dot(graph_dot_path, std::ios::binary);
      if (!dot) {
        std::cerr << "fhdnn-lint: cannot write " << graph_dot_path << "\n";
        return 2;
      }
      dot << fhdnn::lint::graph_dot(program);
    }
  }

  if (json) {
    std::cout << fhdnn::lint::diagnostics_json(diags, files.size());
  } else {
    for (const auto& d : diags) {
      std::cout << d.path << ":" << d.line << ": [" << d.rule << "] "
                << d.message << "\n";
    }
    if (!quiet) {
      std::cout << "fhdnn-lint: " << files.size() << " files, " << diags.size()
                << " violation" << (diags.size() == 1 ? "" : "s") << "\n";
    }
  }
  return diags.empty() ? 0 : 1;
}
