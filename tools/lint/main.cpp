// fhdnn-lint CLI.
//
// Usage: fhdnn-lint [--rules=a,b] [--list-rules] [--quiet] <path>...
//
// Paths may be files or directories (walked recursively for .hpp/.h/.cpp).
// Exit codes are the contract: 0 clean, 1 violations found, 2 usage or I/O
// error. There is deliberately no --fix.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;
using fhdnn::lint::Diagnostic;
using fhdnn::lint::Rule;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp";
}

/// Collect files under `root` in sorted order so output (and therefore CI
/// diffs) is stable across platforms and filesystems.
bool collect(const fs::path& root, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (lintable(root)) out.push_back(root);
    return true;
  }
  if (!fs::is_directory(root, ec)) {
    std::cerr << "fhdnn-lint: cannot read " << root.string() << "\n";
    return false;
  }
  std::vector<fs::path> found;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec) && lintable(it->path())) {
      found.push_back(it->path());
    }
  }
  std::sort(found.begin(), found.end());
  out.insert(out.end(), found.begin(), found.end());
  return true;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int usage(std::ostream& os, int code) {
  os << "usage: fhdnn-lint [--rules=a,b] [--list-rules] [--quiet] <path>...\n"
     << "  --rules=a,b   run only the named rules\n"
     << "  --list-rules  print the rule catalog and exit\n"
     << "  --quiet       suppress the summary line\n"
     << "exit codes: 0 clean, 1 violations, 2 usage/IO error\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> rule_filter;
  std::vector<fs::path> roots;
  bool list_rules = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.starts_with("--rules=")) {
      rule_filter = split_csv(arg.substr(8));
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg.starts_with("-")) {
      std::cerr << "fhdnn-lint: unknown option " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      roots.emplace_back(arg);
    }
  }

  auto rules = fhdnn::lint::default_rules();
  if (!rule_filter.empty()) {
    for (const auto& name : rule_filter) {
      const bool known = std::any_of(
          rules.begin(), rules.end(),
          [&](const auto& r) { return r->name() == name; });
      if (!known) {
        std::cerr << "fhdnn-lint: unknown rule '" << name << "'\n";
        return 2;
      }
    }
    std::erase_if(rules, [&](const auto& r) {
      return std::find(rule_filter.begin(), rule_filter.end(), r->name()) ==
             rule_filter.end();
    });
  }

  if (list_rules) {
    for (const auto& r : rules) {
      std::cout << r->name() << "\n    " << r->description() << "\n";
    }
    return 0;
  }
  if (roots.empty()) return usage(std::cerr, 2);

  std::vector<fs::path> files;
  for (const auto& root : roots) {
    if (!collect(root, files)) return 2;
  }

  std::vector<Diagnostic> diags;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "fhdnn-lint: cannot open " << file.string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto scanned =
        fhdnn::lint::scan_source(file.generic_string(), buf.str());
    fhdnn::lint::lint_file(scanned, rules, diags);
  }

  for (const auto& d : diags) {
    std::cout << d.path << ":" << d.line << ": [" << d.rule << "] "
              << d.message << "\n";
  }
  if (!quiet) {
    std::cout << "fhdnn-lint: " << files.size() << " files, " << diags.size()
              << " violation" << (diags.size() == 1 ? "" : "s") << "\n";
  }
  return diags.empty() ? 0 : 1;
}
