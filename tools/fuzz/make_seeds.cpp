// Seed-corpus generator for the fuzz harnesses.
//
//   fhdnn-make-seeds <out-dir>
//
// Writes <out-dir>/wire/* and <out-dir>/snapshot/* — one well-formed
// artifact per message type / chunk layout, plus the adversarial mutations
// the unit tests probe by hand (tests/test_wire.cpp, tests/test_snapshot.cpp):
// truncation, bad magic, version skew, CRC flips, hostile length fields.
// Seeding the mutations directly lets a 60-second CI smoke start at the
// interesting boundaries instead of rediscovering the header format.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/snapshot.hpp"
#include "wire/wire.hpp"

namespace {

namespace fs = std::filesystem;

bool write_seed(const fs::path& dir, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << (dir / name).string() << "\n";
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

/// The mutation set shared by both corpora: each variant violates one
/// framing invariant of an otherwise valid image.
bool write_mutations(const fs::path& dir, const std::string& stem,
                     const std::vector<std::uint8_t>& good) {
  bool ok = write_seed(dir, stem + "_good", good);
  if (good.size() < 12) return ok;

  std::vector<std::uint8_t> m = good;
  m.resize(good.size() / 2);  // torn write / short read
  ok = write_seed(dir, stem + "_truncated", m) && ok;

  m = good;
  m[0] ^= 0xff;  // bad magic
  ok = write_seed(dir, stem + "_bad_magic", m) && ok;

  m = good;
  m[4] ^= 0xff;  // version field skew (both formats: version follows magic)
  ok = write_seed(dir, stem + "_version_skew", m) && ok;

  m = good;
  m.back() ^= 0x01;  // CRC / terminator corruption
  ok = write_seed(dir, stem + "_crc_flip", m) && ok;

  m = good;
  for (std::size_t i = 8; i < 16 && i < m.size(); ++i) m[i] = 0xff;
  ok = write_seed(dir, stem + "_hostile_length", m) && ok;
  return ok;
}

bool make_wire_seeds(const fs::path& dir) {
  namespace wire = fhdnn::wire;
  bool ok = true;
  for (const auto type :
       {wire::MsgType::kHello, wire::MsgType::kHelloAck,
        wire::MsgType::kRoundAssign, wire::MsgType::kUpdate,
        wire::MsgType::kRoundDone, wire::MsgType::kShutdown,
        wire::MsgType::kArqFrame}) {
    wire::PayloadWriter pw;
    pw.u32(0xC0FFEEu);
    pw.str("seed");
    pw.floats({1.0f, -2.5f, 0.0f});
    const auto frame =
        wire::encode_frame(type, pw.take());
    ok = write_mutations(dir,
                         "frame_t" + std::to_string(static_cast<int>(type)),
                         frame) &&
         ok;
  }
  ok = write_seed(dir, "empty_payload",
                  wire::encode_frame(wire::MsgType::kShutdown, {})) &&
       ok;
  return ok;
}

bool make_snapshot_seeds(const fs::path& dir) {
  namespace util = fhdnn::util;
  bool ok = true;
  {
    util::SnapshotWriter w;
    w.begin_chunk("META");
    w.write_u32(7);
    w.write_str("fuzz seed");
    w.end_chunk();
    w.begin_chunk("VECS");
    w.write_floats({0.5f, -0.5f, 3.25f});
    w.write_u64s({1, 2, 3});
    w.end_chunk();
    ok = write_mutations(dir, "snap_two_chunks", w.finish()) && ok;
  }
  {
    util::SnapshotWriter w;  // header + END only
    ok = write_mutations(dir, "snap_empty", w.finish()) && ok;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: fhdnn-make-seeds <out-dir>\n";
    return 2;
  }
  const fs::path base = argv[1];
  const fs::path wire_dir = base / "wire";
  const fs::path snap_dir = base / "snapshot";
  std::error_code ec;
  fs::create_directories(wire_dir, ec);
  fs::create_directories(snap_dir, ec);
  if (ec) {
    std::cerr << "cannot create " << base.string() << "\n";
    return 2;
  }
  if (!make_wire_seeds(wire_dir) || !make_snapshot_seeds(snap_dir)) return 2;
  std::cout << "seed corpora written under " << base.string() << "\n";
  return 0;
}
