// libFuzzer harness for the snapshot loader (src/util/snapshot).
//
// from_bytes() validates the whole image eagerly (magic, version, chunk
// framing, per-chunk CRC-32, END terminator), so most of the parser runs
// before the harness ever touches a chunk. The walk afterwards drains each
// chunk through the typed readers to exercise the bounds checks.
//
// The only acceptable failure mode is a thrown SnapshotError; any crash,
// sanitizer report, or other exception type is a finding.
//
// Build with -DFHDNN_FUZZ=ON; under Clang this links libFuzzer, elsewhere
// tools/fuzz/driver_main.cpp replays corpus files (see README "Fuzzing").
#include <cstdint>
#include <string>
#include <vector>

#include "util/snapshot.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace util = fhdnn::util;
  try {
    auto reader = util::SnapshotReader::from_bytes(
        std::vector<std::uint8_t>(data, data + size), "<fuzz>");
    (void)reader.version();
    // Walk every chunk; alternate the read pattern so both the scalar and
    // the length-prefixed vector paths see hostile payloads.
    for (int chunk = 0; chunk < 64; ++chunk) {
      const std::string tag = reader.peek_tag();
      if (tag == "END ") break;
      reader.enter_chunk(tag);
      if (chunk % 2 == 0) {
        for (;;) reader.read_u8();  // terminates via SnapshotError
      } else {
        (void)reader.read_floats();
        reader.leave_chunk();
      }
    }
  } catch (const util::SnapshotError&) {
    // Rejection is the expected outcome for most mutated inputs.
  }
  return 0;
}
