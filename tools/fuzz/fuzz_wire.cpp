// libFuzzer harness for the wire framing parser (src/wire).
//
// Properties checked on every input:
//   1. decode_frame() either returns a valid Frame or throws WireError —
//      no crash, no sanitizer report, no other exception type.
//   2. Round-trip: a frame that decodes must re-encode to the exact input
//      bytes (decode is strict: one frame, no trailing bytes).
//   3. Stream agreement: FrameAssembler fed the same bytes, split at an
//      input-derived point, must produce the same single frame with an
//      empty buffer — or throw WireError if and only if whole-buffer
//      decode also rejected the input.
//
// Build with -DFHDNN_FUZZ=ON; under Clang this links libFuzzer, elsewhere
// tools/fuzz/driver_main.cpp replays corpus files (see README "Fuzzing").
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "wire/wire.hpp"

namespace {

[[noreturn]] void die(const char* property) {
  std::fprintf(stderr, "fuzz_wire: property violated: %s\n", property);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace wire = fhdnn::wire;

  std::optional<wire::Frame> whole;
  try {
    whole = wire::decode_frame(data, size);
  } catch (const wire::WireError&) {
    // Rejection is the expected outcome for most mutated inputs.
  }

  if (whole.has_value()) {
    const std::vector<std::uint8_t> re =
        wire::encode_frame(whole->type, whole->payload);
    if (re.size() != size) die("re-encode size != input size");
    for (std::size_t i = 0; i < size; ++i) {
      if (re[i] != data[i]) die("re-encode bytes != input bytes");
    }
  }

  // Split the stream at an input-derived offset so the assembler sees the
  // header/payload boundary land everywhere across the corpus.
  const std::size_t split = size == 0 ? 0 : (data[0] * 37 + size / 2) % size;
  wire::FrameAssembler asm_;
  std::optional<wire::Frame> streamed;
  bool stream_rejected = false;
  try {
    asm_.feed(data, split);
    streamed = asm_.next();
    asm_.feed(data + split, size - split);
    if (!streamed.has_value()) streamed = asm_.next();
  } catch (const wire::WireError&) {
    stream_rejected = true;
  }

  if (whole.has_value()) {
    if (stream_rejected) die("assembler rejected a decodable frame");
    if (!streamed.has_value()) die("assembler buffered a complete frame");
    if (streamed->type != whole->type || streamed->payload != whole->payload) {
      die("assembler frame != whole-buffer frame");
    }
    if (asm_.buffered() != 0) die("trailing bytes after the only frame");
  }
  return 0;
}
