// Standalone driver for the fuzz harnesses when the toolchain has no
// libFuzzer (the in-container default is g++): replays corpus files, one
// LLVMFuzzerTestOneInput call per file, so the harness properties and the
// sanitizers still run over every seed and every saved crash input.
//
//   fuzz_wire <corpus-file>...
//
// Exit code 0 when every input was processed (a property violation aborts),
// 2 on usage or I/O error. With no arguments the harness runs once over the
// empty input.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  if (argc == 1) {
    LLVMFuzzerTestOneInput(nullptr, 0);
    std::printf("1 input processed (empty)\n");
    return 0;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("%d inputs processed\n", argc - 1);
  return 0;
}
